#include "trace/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cassert>
#include <cerrno>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/serialize.hpp"
#include "trace/columnar.hpp"

namespace tdbg::trace {

namespace {

/// `trace.cache.*` instruments mirroring `SegmentCacheStats`, so the
/// segment cache shows up in `stats`/`--stats` reports and on the
/// analysis server without callers plumbing `cache_stats()` around.
/// Handles are cached once — registry lookups take a mutex.
struct SegmentCacheMetrics {
  obs::Counter& hits =
      obs::MetricsRegistry::global().counter("trace.cache.hits");
  obs::Counter& loads =
      obs::MetricsRegistry::global().counter("trace.cache.loads");
  obs::Counter& evictions =
      obs::MetricsRegistry::global().counter("trace.cache.evictions");
  obs::Counter& prefetches =
      obs::MetricsRegistry::global().counter("trace.cache.prefetches");
  obs::Gauge& resident_segments =
      obs::MetricsRegistry::global().gauge("trace.cache.resident_segments");
  obs::Gauge& resident_bytes =
      obs::MetricsRegistry::global().gauge("trace.cache.resident_bytes");

  static SegmentCacheMetrics& get() {
    static SegmentCacheMetrics m;
    return m;
  }
};

/// `trace.decode.*` instruments: how much work the zone maps and
/// column pruning saved.  `segments_skipped` counts segments a query
/// dismissed from the directory alone; `columns_skipped` counts
/// columns a columnar decode did not have to touch; `decoded_bytes`
/// counts compressed payload bytes actually decoded.
struct DecodeMetrics {
  obs::Counter& segments_skipped =
      obs::MetricsRegistry::global().counter("trace.decode.segments_skipped");
  obs::Counter& columns_skipped =
      obs::MetricsRegistry::global().counter("trace.decode.columns_skipped");
  obs::Counter& decoded_bytes =
      obs::MetricsRegistry::global().counter("trace.decode.decoded_bytes");

  static DecodeMetrics& get() {
    static DecodeMetrics m;
    return m;
  }
};

/// Row `k`'s field `col` as a u64 bit pattern (signed fields stored
/// two's-complement), matching `ColumnProjection::col` layout.
std::uint64_t event_field_u64(std::size_t col, const Event& e) {
  switch (col) {
    case columnar::kColKind: return static_cast<std::uint64_t>(e.kind);
    case columnar::kColRank:
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(e.rank));
    case columnar::kColMarker: return e.marker;
    case columnar::kColConstruct: return e.construct;
    case columnar::kColTStart: return static_cast<std::uint64_t>(e.t_start);
    case columnar::kColTEnd: return static_cast<std::uint64_t>(e.t_end);
    case columnar::kColPeer:
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(e.peer));
    case columnar::kColTag:
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(e.tag));
    case columnar::kColChannelSeq: return e.channel_seq;
    case columnar::kColBytes: return e.bytes;
    default: return e.wildcard ? 1 : 0;
  }
}

/// Inverse of `event_field_u64`.
void set_event_field(std::size_t col, std::uint64_t v, Event& e) {
  switch (col) {
    case columnar::kColKind: e.kind = static_cast<EventKind>(v); break;
    case columnar::kColRank: e.rank = static_cast<mpi::Rank>(v); break;
    case columnar::kColMarker: e.marker = v; break;
    case columnar::kColConstruct:
      e.construct = static_cast<ConstructId>(v);
      break;
    case columnar::kColTStart:
      e.t_start = static_cast<support::TimeNs>(v);
      break;
    case columnar::kColTEnd: e.t_end = static_cast<support::TimeNs>(v); break;
    case columnar::kColPeer:
      e.peer = static_cast<mpi::Rank>(static_cast<std::int64_t>(v));
      break;
    case columnar::kColTag:
      e.tag = static_cast<mpi::Tag>(static_cast<std::int64_t>(v));
      break;
    case columnar::kColChannelSeq: e.channel_seq = v; break;
    case columnar::kColBytes: e.bytes = v; break;
    default: e.wildcard = v != 0; break;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceStore defaults

void TraceStore::for_each_rank_in_window(mpi::Rank rank, support::TimeNs t0,
                                         support::TimeNs t1,
                                         const EventVisitor& visit) const {
  for_each_rank_event(rank, [&](std::size_t i, const Event& e) {
    if (e.t_start <= t1 && e.t_end >= t0) visit(i, e);
  });
}

// ---------------------------------------------------------------------------
// InMemoryTraceStore

InMemoryTraceStore::InMemoryTraceStore(
    int num_ranks, std::vector<Event> events,
    std::shared_ptr<const ConstructRegistry> constructs)
    : num_ranks_(num_ranks), events_(std::move(events)),
      constructs_(std::move(constructs)) {
  TDBG_CHECK(num_ranks_ > 0, "trace needs at least one rank");
  if (constructs_ == nullptr) {
    constructs_ = std::make_shared<ConstructRegistry>();
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.t_start != b.t_start) return a.t_start < b.t_start;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.marker < b.marker;
                   });
  by_rank_.assign(static_cast<std::size_t>(num_ranks_), {});
  t_min_ = events_.empty() ? 0 : events_.front().t_start;
  t_max_ = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    TDBG_CHECK(e.rank >= 0 && e.rank < num_ranks_, "event rank out of range");
    by_rank_[static_cast<std::size_t>(e.rank)].push_back(i);
    t_max_ = std::max(t_max_, e.t_end);
  }
  // Global sorting by start time can reorder same-rank events that
  // share a timestamp; restore per-rank program order by marker (the
  // marker counter is nondecreasing within a rank).
  for (auto& idx : by_rank_) {
    std::stable_sort(idx.begin(), idx.end(),
                     [this](std::size_t a, std::size_t b) {
                       if (events_[a].marker != events_[b].marker) {
                         return events_[a].marker < events_[b].marker;
                       }
                       return events_[a].t_start < events_[b].t_start;
                     });
  }
}

const std::vector<std::size_t>& InMemoryTraceStore::rank_index(
    mpi::Rank rank) const {
  TDBG_CHECK(rank >= 0 && rank < num_ranks_, "rank out of range");
  return by_rank_[static_cast<std::size_t>(rank)];
}

void InMemoryTraceStore::for_each(const EventVisitor& visit) const {
  for (std::size_t i = 0; i < events_.size(); ++i) visit(i, events_[i]);
}

void InMemoryTraceStore::for_each_in_window(support::TimeNs t0,
                                            support::TimeNs t1,
                                            const EventVisitor& visit) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.t_start > t1) break;  // sorted by start time
    if (e.t_end >= t0) visit(i, e);
  }
}

std::size_t InMemoryTraceStore::rank_size(mpi::Rank rank) const {
  return rank_index(rank).size();
}

std::size_t InMemoryTraceStore::rank_event(mpi::Rank rank,
                                           std::size_t pos) const {
  return rank_index(rank).at(pos);
}

void InMemoryTraceStore::for_each_rank_event(mpi::Rank rank,
                                             const EventVisitor& visit) const {
  for (std::size_t i : rank_index(rank)) visit(i, events_[i]);
}

std::optional<std::size_t> InMemoryTraceStore::find_marker(
    mpi::Rank rank, std::uint64_t marker) const {
  const auto& idx = rank_index(rank);
  // Program order is sorted by marker: binary search.
  const auto it = std::lower_bound(
      idx.begin(), idx.end(), marker,
      [this](std::size_t i, std::uint64_t m) { return events_[i].marker < m; });
  if (it == idx.end() || events_[*it].marker != marker) return std::nullopt;
  return *it;
}

std::size_t InMemoryTraceStore::segment_count() const {
  return (events_.size() + kInMemorySegmentEvents - 1) / kInMemorySegmentEvents;
}

std::pair<std::size_t, std::size_t> InMemoryTraceStore::segment_range(
    std::size_t seg) const {
  TDBG_CHECK(seg < segment_count(), "segment index out of range");
  const std::size_t begin = seg * kInMemorySegmentEvents;
  return {begin, std::min(begin + kInMemorySegmentEvents, events_.size())};
}

void InMemoryTraceStore::for_each_in_segment(std::size_t seg,
                                             const EventVisitor& visit) const {
  const auto [begin, end] = segment_range(seg);
  for (std::size_t i = begin; i < end; ++i) visit(i, events_[i]);
}

std::optional<std::size_t> InMemoryTraceStore::last_event_at_or_before(
    mpi::Rank rank, support::TimeNs t) const {
  const auto& idx = rank_index(rank);
  // Per-rank start times are nondecreasing in program order (each
  // rank's clock is monotone), so the answer is a partition point.
  const auto it = std::partition_point(
      idx.begin(), idx.end(),
      [this, t](std::size_t i) { return events_[i].t_start <= t; });
  if (it == idx.begin()) return std::nullopt;
  return *(it - 1);
}

// ---------------------------------------------------------------------------
// SegmentedTraceStore

SegmentedTraceStore::SegmentedTraceStore(std::filesystem::path path,
                                         int num_ranks, wire::Footer footer,
                                         std::size_t cache_segments,
                                         bool prefetch)
    : path_(std::move(path)), footer_(std::move(footer)),
      num_ranks_(num_ranks), prefetch_enabled_(prefetch),
      cache_segments_(std::max<std::size_t>(1, cache_segments)) {
  TDBG_CHECK(num_ranks_ > 0, "trace needs at least one rank");
  TDBG_CHECK(footer_.display_sorted() && footer_.rank_markers_monotone(),
             "segmented store requires a sorted v2/v3 trace");
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw IoError("cannot open trace file: " + path_.string());
  }
  auto registry = std::make_shared<ConstructRegistry>();
  registry->restore(footer_.constructs);
  constructs_ = std::move(registry);

  const std::size_t nseg = footer_.segments.size();
  seg_first_index_.assign(nseg + 1, 0);
  rank_first_pos_.assign(static_cast<std::size_t>(num_ranks_),
                         std::vector<std::size_t>(nseg + 1, 0));
  for (std::size_t s = 0; s < nseg; ++s) {
    const auto& seg = footer_.segments[s];
    TDBG_CHECK(seg.ranks.size() == static_cast<std::size_t>(num_ranks_),
               "trace directory rank-table width mismatch");
    seg_first_index_[s + 1] = seg_first_index_[s] + seg.count;
    for (int r = 0; r < num_ranks_; ++r) {
      rank_first_pos_[r][s + 1] =
          rank_first_pos_[r][s] + seg.ranks[static_cast<std::size_t>(r)].count;
    }
  }
  TDBG_CHECK(seg_first_index_[nseg] == footer_.event_count,
             "trace directory event count mismatch");
  if (nseg > 0) {
    t_min_ = footer_.segments.front().t_min;
    for (const auto& seg : footer_.segments) {
      t_max_ = std::max(t_max_, seg.t_max);
    }
  }
  cache_.assign(nseg, nullptr);
  if (footer_.version == 3) {
    // The compressed tier gets the byte budget that `cache_segments`
    // decoded segments would have cost as v2 rows — same memory
    // envelope, several times more resident trace.
    blob_budget_ = cache_segments_ *
                   static_cast<std::size_t>(footer_.segment_events) *
                   wire::kEventRecordBytes;
    blob_cache_.assign(nseg, nullptr);
    // The projection tier gets the RAM the decoded-row LRU is allowed;
    // narrow projections (8 bytes per selected column per event) make
    // that envelope cover several times more trace than full rows.
    proj_budget_ = cache_segments_ *
                   static_cast<std::size_t>(footer_.segment_events) *
                   sizeof(Event);
  }
}

std::size_t SegmentedTraceStore::segment_of_index(std::size_t i) const {
  TDBG_CHECK(i < size(), "event index out of range");
  const auto it = std::upper_bound(seg_first_index_.begin(),
                                   seg_first_index_.end(), i);
  return static_cast<std::size_t>(it - seg_first_index_.begin()) - 1;
}

SegmentedTraceStore::~SegmentedTraceStore() {
  {
    std::unique_lock lk(prefetch_mu_);
    prefetch_cv_.wait(lk, [this] { return prefetch_inflight_ == 0; });
  }
  if (fd_ >= 0) ::close(fd_);
}

SegmentedTraceStore::BlobPtr SegmentedTraceStore::blob(std::size_t seg) const {
  {
    std::lock_guard lk(blob_mu_);
    if (!blob_cache_.empty() && blob_cache_[seg]) {
      ++blob_hits_;
      blob_lru_.remove(seg);
      blob_lru_.push_front(seg);
      return blob_cache_[seg];
    }
  }
  const auto& meta = footer_.segments[seg];
  auto bytes = std::make_shared<std::vector<std::byte>>(meta.byte_len);
  std::size_t got = 0;
  while (got < bytes->size()) {
    const ssize_t n = ::pread(fd_, bytes->data() + got, bytes->size() - got,
                              static_cast<off_t>(meta.offset + got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw IoError("trace segment read failed: " + path_.string());
    }
    got += static_cast<std::size_t>(n);
  }
  std::lock_guard lk(blob_mu_);
  ++blob_loads_;
  if (blob_cache_.empty() || blob_budget_ == 0) return bytes;
  if (!blob_cache_[seg]) {
    while (blob_bytes_ + bytes->size() > blob_budget_ && !blob_lru_.empty()) {
      const std::size_t victim = blob_lru_.back();
      blob_lru_.pop_back();
      blob_bytes_ -= blob_cache_[victim]->size();
      blob_cache_[victim] = nullptr;
    }
    blob_cache_[seg] = bytes;
    blob_lru_.push_front(seg);
    blob_bytes_ += bytes->size();
  }
  return bytes;
}

SegmentedTraceStore::SegmentPtr SegmentedTraceStore::resident_segment(
    std::size_t seg) const {
  std::lock_guard lk(mu_);
  if (!cache_[seg]) return nullptr;
  ++stats_.hits;
  SegmentCacheMetrics::get().hits.add(-1);
  lru_.remove(seg);
  lru_.push_front(seg);
  return cache_[seg];
}

SegmentedTraceStore::ProjectionPtr SegmentedTraceStore::projection(
    std::size_t seg, ColumnSet cols) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(seg) << wire::kNumColumnsV3) | cols;
  {
    std::lock_guard lk(proj_mu_);
    const auto it = proj_map_.find(key);
    if (it != proj_map_.end()) {
      proj_lru_.splice(proj_lru_.begin(), proj_lru_, it->second);
      ++proj_hits_;
      return it->second->second;
    }
  }
  const auto bytes = blob(seg);
  thread_local columnar::DecodeScratch scratch;
  const auto res = columnar::decode_segment(*bytes, cols, num_ranks_,
                                            scratch.events, scratch.vals,
                                            path_, seg);
  auto& m = DecodeMetrics::get();
  m.decoded_bytes.add(-1, res.decoded_bytes);
  m.columns_skipped.add(
      -1, wire::kNumColumnsV3 -
              static_cast<std::uint64_t>(std::popcount(res.decoded_cols)));
  auto proj = std::make_shared<ColumnProjection>();
  proj->cols = cols;
  const std::size_t n = scratch.events.size();
  for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
    if ((cols & (1u << c)) == 0) continue;
    auto& vals = proj->col[c];
    vals.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      vals[k] = event_field_u64(c, scratch.events[k]);
    }
    proj->bytes += n * sizeof(std::uint64_t);
  }
  std::lock_guard lk(proj_mu_);
  if (proj_map_.find(key) == proj_map_.end()) {
    proj_lru_.emplace_front(key, proj);
    proj_map_[key] = proj_lru_.begin();
    proj_bytes_ += proj->bytes;
    ++proj_loads_;
    while (proj_bytes_ > proj_budget_ && proj_lru_.size() > 1) {
      const auto& victim = proj_lru_.back();
      proj_bytes_ -= victim.second->bytes;
      proj_map_.erase(victim.first);
      proj_lru_.pop_back();
    }
  }
  return proj;
}

SegmentedTraceStore::SegmentPtr SegmentedTraceStore::load_segment(
    std::size_t seg) const {
  const auto& meta = footer_.segments[seg];
  const auto bytes = blob(seg);

  auto loaded = std::make_shared<LoadedSegment>();
  loaded->rank_positions.assign(static_cast<std::size_t>(num_ranks_), {});
  if (footer_.version == 3) {
    thread_local std::vector<std::uint64_t> scratch;
    const auto res = columnar::decode_segment(
        *bytes, columnar::kAllColumns, num_ranks_, loaded->events, scratch,
        path_, seg);
    DecodeMetrics::get().decoded_bytes.add(-1, res.decoded_bytes);
    for (std::size_t k = 0; k < loaded->events.size(); ++k) {
      loaded->rank_positions[static_cast<std::size_t>(loaded->events[k].rank)]
          .push_back(static_cast<std::uint32_t>(k));
    }
    return loaded;
  }
  loaded->events.reserve(meta.count);
  support::BinaryReader r(*bytes);
  for (std::uint64_t k = 0; k < meta.count; ++k) {
    const auto tag = r.get<std::uint8_t>();
    if (tag != wire::kRecordEvent) {
      throw FormatError("corrupt trace segment in " + path_.string());
    }
    const auto kind = std::to_integer<std::uint8_t>((*bytes)[r.position()]);
    if (!wire::valid_event_kind(kind)) {
      throw FormatError(
          "unknown event kind " + std::to_string(kind) + " in trace file " +
          path_.string() + " at offset " +
          std::to_string(meta.offset + k * wire::kEventRecordBytes + 1));
    }
    Event e = wire::decode_event(r);
    TDBG_CHECK(e.rank >= 0 && e.rank < num_ranks_, "event rank out of range");
    loaded->rank_positions[static_cast<std::size_t>(e.rank)].push_back(
        static_cast<std::uint32_t>(k));
    loaded->events.push_back(e);
  }
  return loaded;
}

void SegmentedTraceStore::install(std::size_t seg,
                                  const SegmentPtr& loaded) const {
  const auto seg_bytes = [](const LoadedSegment& s) {
    std::size_t b = s.events.size() * sizeof(Event);
    for (const auto& v : s.rank_positions) b += v.size() * sizeof(std::uint32_t);
    return b;
  };
  auto& metrics = SegmentCacheMetrics::get();
  while (lru_.size() >= cache_segments_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    stats_.resident_bytes -= seg_bytes(*cache_[victim]);
    cache_[victim] = nullptr;
    ++stats_.evictions;
    metrics.evictions.add(-1);
  }
  cache_[seg] = loaded;
  lru_.push_front(seg);
  ++stats_.loads;
  metrics.loads.add(-1);
  stats_.resident_bytes += seg_bytes(*loaded);
  stats_.resident_segments = lru_.size();
  metrics.resident_segments.set(-1, stats_.resident_segments);
  metrics.resident_bytes.set(-1, stats_.resident_bytes);
}

SegmentedTraceStore::SegmentPtr SegmentedTraceStore::segment(
    std::size_t seg) const {
  std::shared_future<SegmentPtr> pending;
  std::promise<SegmentPtr> promise;
  bool loader = false;
  {
    std::lock_guard lk(mu_);
    if (cache_[seg]) {
      ++stats_.hits;
      SegmentCacheMetrics::get().hits.add(-1);
      lru_.remove(seg);
      lru_.push_front(seg);
      return cache_[seg];
    }
    const auto it = loading_.find(seg);
    if (it != loading_.end()) {
      // Someone is already reading this segment: share its result.
      ++stats_.hits;
      SegmentCacheMetrics::get().hits.add(-1);
      pending = it->second;
    } else {
      loader = true;
      pending = promise.get_future().share();
      loading_.emplace(seg, pending);
    }
  }
  if (!loader) return pending.get();  // rethrows the loader's error

  // IO + decode run outside the lock: concurrent misses on *different*
  // segments proceed in parallel through pread.
  try {
    auto loaded = load_segment(seg);
    {
      std::lock_guard lk(mu_);
      install(seg, loaded);
      loading_.erase(seg);
    }
    promise.set_value(loaded);
    return loaded;
  } catch (...) {
    {
      std::lock_guard lk(mu_);
      loading_.erase(seg);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

void SegmentedTraceStore::maybe_prefetch(std::size_t seg) const {
  if (!prefetch_enabled_ || seg >= footer_.segments.size()) return;
  auto& pool = exec::Executor::global();
  if (pool.threads() <= 1) return;
  {
    std::lock_guard lk(mu_);
    if (cache_[seg] || loading_.count(seg) != 0) return;
    ++stats_.prefetches;
    SegmentCacheMetrics::get().prefetches.add(-1);
  }
  {
    std::lock_guard lk(prefetch_mu_);
    ++prefetch_inflight_;
  }
  pool.async([this, seg] {
    try {
      (void)segment(seg);
    } catch (...) {
      // A failing read-ahead is dropped; the demand read surfaces the
      // error on the consuming thread.
    }
    std::lock_guard lk(prefetch_mu_);
    --prefetch_inflight_;
    prefetch_cv_.notify_all();
  });
}

SegmentCacheStats SegmentedTraceStore::cache_stats() const {
  SegmentCacheStats s;
  {
    std::lock_guard lk(mu_);
    s = stats_;
    s.resident_segments = lru_.size();
  }
  {
    std::lock_guard lk(blob_mu_);
    s.blob_loads = blob_loads_;
    s.blob_hits = blob_hits_;
    s.compressed_segments = blob_lru_.size();
    s.compressed_bytes = blob_bytes_;
  }
  std::lock_guard lk(proj_mu_);
  s.projection_loads = proj_loads_;
  s.projection_hits = proj_hits_;
  s.projections = proj_lru_.size();
  s.projection_bytes = proj_bytes_;
  return s;
}

std::optional<SegmentZones> SegmentedTraceStore::segment_zones(
    std::size_t seg) const {
  TDBG_CHECK(seg < footer_.segments.size(), "segment index out of range");
  const auto& meta = footer_.segments[seg];
  SegmentZones z;
  z.t_min = meta.t_min;
  z.t_max = meta.t_max;
  if (footer_.version == 3 && meta.zones.size() == wire::kNumColumnsV3) {
    z.kind_mask = meta.kind_mask;
    z.rank_mask = meta.rank_mask;
    z.may_have_wildcard = meta.zones[columnar::kColWildcard].hi != 0;
  } else {
    // v2 directory: no presence masks were recorded — report the
    // conservative "anything may appear" summary, with the rank mask
    // recovered from the per-rank counts.
    z.kind_mask = (1u << (wire::kMaxEventKind + 1)) - 1;
    for (int r = 0; r < num_ranks_; ++r) {
      if (meta.ranks[static_cast<std::size_t>(r)].count > 0) {
        z.rank_mask |= std::uint64_t{1} << std::min(r, 63);
      }
    }
    z.may_have_wildcard = true;
  }
  return z;
}

void SegmentedTraceStore::for_each_in_segment_cols(
    std::size_t s, ColumnSet cols, const EventVisitor& visit) const {
  TDBG_CHECK(s < footer_.segments.size(), "segment index out of range");
  if (footer_.version != 3) {
    for_each_in_segment(s, visit);
    return;
  }
  const std::size_t base = seg_first_index_[s];
  if (const auto seg = resident_segment(s)) {
    // A full decode is already resident: reuse it, no codec work.
    for (std::size_t k = 0; k < seg->events.size(); ++k) {
      visit(base + k, seg->events[k]);
    }
    return;
  }
  const auto bytes = blob(s);
  thread_local columnar::DecodeScratch scratch;
  const auto res = columnar::decode_segment(*bytes, cols, num_ranks_,
                                            scratch.events, scratch.vals,
                                            path_, s);
  auto& m = DecodeMetrics::get();
  m.decoded_bytes.add(-1, res.decoded_bytes);
  m.columns_skipped.add(
      -1, wire::kNumColumnsV3 -
              static_cast<std::uint64_t>(std::popcount(res.decoded_cols)));
  for (std::size_t k = 0; k < scratch.events.size(); ++k) {
    visit(base + k, scratch.events[k]);
  }
}

void SegmentedTraceStore::for_each_rank_in_window(
    mpi::Rank rank, support::TimeNs t0, support::TimeNs t1,
    const EventVisitor& visit) const {
  TDBG_CHECK(rank >= 0 && rank < num_ranks_, "rank out of range");
  auto& m = DecodeMetrics::get();
  // Segment t_min values are nondecreasing: nothing past the partition
  // point can intersect the window.
  const auto hi = std::partition_point(
      footer_.segments.begin(), footer_.segments.end(),
      [t1](const wire::SegmentMeta& sm) { return sm.t_min <= t1; });
  const auto nseg = static_cast<std::size_t>(hi - footer_.segments.begin());
  const auto r = static_cast<std::size_t>(rank);
  for (std::size_t s = 0; s < nseg; ++s) {
    const auto& meta = footer_.segments[s];
    if (meta.ranks[r].count == 0) continue;  // rank absent: free skip
    if (meta.t_max < t0) {
      m.segments_skipped.add(-1);  // zone skip: a naive scan loads this
      continue;
    }
    const std::size_t base = seg_first_index_[s];
    if (const auto seg = resident_segment(s)) {
      for (std::uint32_t k : seg->rank_positions[r]) {
        const Event& e = seg->events[k];
        if (e.t_start > t1) return;  // per-rank starts are nondecreasing
        if (e.t_end >= t0) visit(base + k, e);
      }
      continue;
    }
    if (footer_.version != 3) {
      const auto seg = segment(s);
      for (std::uint32_t k : seg->rank_positions[r]) {
        const Event& e = seg->events[k];
        if (e.t_start > t1) return;
        if (e.t_end >= t0) visit(base + k, e);
      }
      continue;
    }
    // v3: peek at the rank/time columns first; only a segment that
    // actually holds a matching row pays for the other eight columns.
    // The probe comes from the projection cache, so repeated window
    // queries over the same region skip even the narrow decode.
    const auto probe = projection(s, kColRank | kColTStart | kColTEnd);
    const auto& rk = probe->col[columnar::kColRank];
    const auto& ts = probe->col[columnar::kColTStart];
    const auto& te = probe->col[columnar::kColTEnd];
    bool match = false;
    bool past = false;
    for (std::size_t k = 0; k < rk.size(); ++k) {
      if (rk[k] != static_cast<std::uint64_t>(r)) continue;
      if (static_cast<support::TimeNs>(ts[k]) > t1) {
        past = true;
        break;
      }
      if (static_cast<support::TimeNs>(te[k]) >= t0) {
        match = true;
        break;
      }
    }
    if (!match) {
      if (past) return;
      continue;
    }
    // A confirmed hit pays the full decode once via the shared cache so
    // repeated window queries over the same hot region reuse it.
    const auto seg = segment(s);
    for (std::uint32_t k : seg->rank_positions[r]) {
      const Event& e = seg->events[k];
      if (e.t_start > t1) return;
      if (e.t_end >= t0) visit(base + k, e);
    }
  }
}

void SegmentedTraceStore::for_each_rank_in_window_cols(
    mpi::Rank rank, support::TimeNs t0, support::TimeNs t1, ColumnSet cols,
    const EventVisitor& visit) const {
  TDBG_CHECK(rank >= 0 && rank < num_ranks_, "rank out of range");
  if (footer_.version != 3) {
    for_each_rank_in_window(rank, t0, t1, visit);
    return;
  }
  auto& m = DecodeMetrics::get();
  const auto hi = std::partition_point(
      footer_.segments.begin(), footer_.segments.end(),
      [t1](const wire::SegmentMeta& sm) { return sm.t_min <= t1; });
  const auto nseg = static_cast<std::size_t>(hi - footer_.segments.begin());
  const auto r = static_cast<std::size_t>(rank);
  // The probe columns are required to evaluate the predicate itself.
  const ColumnSet want = cols | kColRank | kColTStart | kColTEnd;
  for (std::size_t s = 0; s < nseg; ++s) {
    const auto& meta = footer_.segments[s];
    if (meta.ranks[r].count == 0) continue;
    if (meta.t_max < t0) {
      m.segments_skipped.add(-1);
      continue;
    }
    const std::size_t base = seg_first_index_[s];
    if (const auto seg = resident_segment(s)) {
      for (std::uint32_t k : seg->rank_positions[r]) {
        const Event& e = seg->events[k];
        if (e.t_start > t1) return;
        if (e.t_end >= t0) visit(base + k, e);
      }
      continue;
    }
    // Not resident: answer from the projection of just the requested
    // columns — the caller has promised not to look at the rest, so
    // matching rows materialize partially-populated events on the
    // stack without ever building a full segment.  The projection
    // stays cached, so the next window over this region decodes
    // nothing at all.
    const auto proj = projection(s, want);
    const auto& rk = proj->col[columnar::kColRank];
    const auto& ts = proj->col[columnar::kColTStart];
    const auto& te = proj->col[columnar::kColTEnd];
    for (std::size_t k = 0; k < rk.size(); ++k) {
      if (rk[k] != static_cast<std::uint64_t>(r)) continue;
      if (static_cast<support::TimeNs>(ts[k]) > t1) return;
      if (static_cast<support::TimeNs>(te[k]) < t0) continue;
      Event e;
      for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
        if ((want & (1u << c)) != 0) set_event_field(c, proj->col[c][k], e);
      }
      visit(base + k, e);
    }
  }
}

Event SegmentedTraceStore::event(std::size_t i) const {
  const std::size_t s = segment_of_index(i);
  return segment(s)->events[i - seg_first_index_[s]];
}

std::pair<std::size_t, std::size_t> SegmentedTraceStore::segment_range(
    std::size_t seg) const {
  TDBG_CHECK(seg < footer_.segments.size(), "segment index out of range");
  return {seg_first_index_[seg], seg_first_index_[seg + 1]};
}

void SegmentedTraceStore::for_each_in_segment(std::size_t s,
                                              const EventVisitor& visit) const {
  TDBG_CHECK(s < footer_.segments.size(), "segment index out of range");
  const auto seg = segment(s);
  const std::size_t base = seg_first_index_[s];
  for (std::size_t k = 0; k < seg->events.size(); ++k) {
    visit(base + k, seg->events[k]);
  }
}

void SegmentedTraceStore::for_each(const EventVisitor& visit) const {
  if (footer_.version == 3) {
    // Streaming sweep: decode each block into reusable per-thread
    // scratch and move on.  A full pass touches every segment exactly
    // once, so materializing LoadedSegments (row copies, per-rank
    // position indexes, LRU churn) would be pure overhead; segments
    // already resident (or prefetched) are still reused for free.
    auto& m = DecodeMetrics::get();
    thread_local columnar::DecodeScratch scratch;
    for (std::size_t s = 0; s < footer_.segments.size(); ++s) {
      maybe_prefetch(s + 1);
      const std::size_t base = seg_first_index_[s];
      if (const auto seg = resident_segment(s)) {
        for (std::size_t k = 0; k < seg->events.size(); ++k) {
          visit(base + k, seg->events[k]);
        }
        continue;
      }
      const auto bytes = blob(s);
      // Fused decode+visit: rows are delivered one L1-sized tile at a
      // time, so the sweep never writes and re-reads a multi-MB run of
      // decoded events.
      const auto res = columnar::decode_segment_visit(
          *bytes, num_ranks_, base, visit, scratch.vals, path_, s);
      m.decoded_bytes.add(-1, res.decoded_bytes);
    }
    return;
  }
  for (std::size_t s = 0; s < footer_.segments.size(); ++s) {
    maybe_prefetch(s + 1);  // decode k+1 on the pool while we consume k
    const auto seg = segment(s);
    const std::size_t base = seg_first_index_[s];
    for (std::size_t k = 0; k < seg->events.size(); ++k) {
      visit(base + k, seg->events[k]);
    }
  }
}

void SegmentedTraceStore::for_each_in_window(support::TimeNs t0,
                                             support::TimeNs t1,
                                             const EventVisitor& visit) const {
  // Segment t_min values are nondecreasing (the stream is sorted by
  // t_start): every segment past the last one with t_min <= t1 starts
  // after the window.
  const auto hi = std::partition_point(
      footer_.segments.begin(), footer_.segments.end(),
      [t1](const wire::SegmentMeta& m) { return m.t_min <= t1; });
  const auto nseg =
      static_cast<std::size_t>(hi - footer_.segments.begin());
  for (std::size_t s = 0; s < nseg; ++s) {
    if (footer_.segments[s].t_max < t0) {
      DecodeMetrics::get().segments_skipped.add(-1);  // directory-only skip
      continue;
    }
    if (s + 1 < nseg && footer_.segments[s + 1].t_max >= t0) {
      maybe_prefetch(s + 1);
    }
    const auto seg = segment(s);
    const std::size_t base = seg_first_index_[s];
    for (std::size_t k = 0; k < seg->events.size(); ++k) {
      const Event& e = seg->events[k];
      if (e.t_start > t1) return;  // sorted by start time
      if (e.t_end >= t0) visit(base + k, e);
    }
  }
}

std::size_t SegmentedTraceStore::rank_size(mpi::Rank rank) const {
  TDBG_CHECK(rank >= 0 && rank < num_ranks_, "rank out of range");
  return rank_first_pos_[static_cast<std::size_t>(rank)].back();
}

std::size_t SegmentedTraceStore::rank_event(mpi::Rank rank,
                                            std::size_t pos) const {
  TDBG_CHECK(pos < rank_size(rank), "rank event position out of range");
  const auto& first_pos = rank_first_pos_[static_cast<std::size_t>(rank)];
  const auto it =
      std::upper_bound(first_pos.begin(), first_pos.end(), pos);
  const auto s = static_cast<std::size_t>(it - first_pos.begin()) - 1;
  const auto seg = segment(s);
  const auto& positions = seg->rank_positions[static_cast<std::size_t>(rank)];
  return seg_first_index_[s] + positions[pos - first_pos[s]];
}

void SegmentedTraceStore::for_each_rank_event(mpi::Rank rank,
                                              const EventVisitor& visit) const {
  TDBG_CHECK(rank >= 0 && rank < num_ranks_, "rank out of range");
  const std::size_t nseg = footer_.segments.size();
  for (std::size_t s = 0; s < nseg; ++s) {
    const auto& meta = footer_.segments[s];
    if (meta.ranks[static_cast<std::size_t>(rank)].count == 0) continue;
    if (s + 1 < nseg &&
        footer_.segments[s + 1].ranks[static_cast<std::size_t>(rank)].count >
            0) {
      maybe_prefetch(s + 1);
    }
    const auto seg = segment(s);
    const std::size_t base = seg_first_index_[s];
    for (std::uint32_t k : seg->rank_positions[static_cast<std::size_t>(rank)]) {
      visit(base + k, seg->events[k]);
    }
  }
}

std::optional<std::size_t> SegmentedTraceStore::find_marker(
    mpi::Rank rank, std::uint64_t marker) const {
  TDBG_CHECK(rank >= 0 && rank < num_ranks_, "rank out of range");
  // Per-rank markers are nondecreasing across the stream, so the first
  // segment whose marker_hi reaches `marker` is the only candidate
  // holding its first occurrence.
  for (std::size_t s = 0; s < footer_.segments.size(); ++s) {
    const auto& rk = footer_.segments[s].ranks[static_cast<std::size_t>(rank)];
    if (rk.count == 0 || rk.marker_hi < marker) continue;
    if (rk.marker_lo > marker) return std::nullopt;
    const auto seg = segment(s);
    const auto& positions =
        seg->rank_positions[static_cast<std::size_t>(rank)];
    const auto it = std::lower_bound(
        positions.begin(), positions.end(), marker,
        [&](std::uint32_t p, std::uint64_t m) {
          return seg->events[p].marker < m;
        });
    if (it == positions.end() || seg->events[*it].marker != marker) {
      return std::nullopt;
    }
    return seg_first_index_[s] + *it;
  }
  return std::nullopt;
}

std::optional<std::size_t> SegmentedTraceStore::last_event_at_or_before(
    mpi::Rank rank, support::TimeNs t) const {
  TDBG_CHECK(rank >= 0 && rank < num_ranks_, "rank out of range");
  // Candidate: the last segment with rank events whose t_min <= t.
  // Everything in earlier segments starts no later than that
  // segment's first event, so at most two segment loads resolve the
  // query.
  const auto hi = std::partition_point(
      footer_.segments.begin(), footer_.segments.end(),
      [t](const wire::SegmentMeta& m) { return m.t_min <= t; });
  auto s = static_cast<std::size_t>(hi - footer_.segments.begin());
  while (s > 0) {
    --s;
    const auto& rk = footer_.segments[s].ranks[static_cast<std::size_t>(rank)];
    if (rk.count == 0) continue;
    const auto seg = segment(s);
    const auto& positions =
        seg->rank_positions[static_cast<std::size_t>(rank)];
    const auto it = std::partition_point(
        positions.begin(), positions.end(),
        [&](std::uint32_t p) { return seg->events[p].t_start <= t; });
    if (it == positions.begin()) continue;  // all start after t: step back
    return seg_first_index_[s] + *(it - 1);
  }
  return std::nullopt;
}

}  // namespace tdbg::trace
