#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "trace/construct_registry.hpp"
#include "trace/event.hpp"

namespace tdbg::trace {

/// A send record paired with the receive that consumed it.
struct MessageMatch {
  std::size_t send_index = 0;  ///< index into `Trace::events()`
  std::size_t recv_index = 0;
};

/// Output of `Trace::match_report`: the unique send/receive matching
/// plus the leftovers the debugger's communication supervision shows
/// the user (paper §4.4: "the debugger maintains a list of unmatched
/// sends and receives").
struct MatchReport {
  std::vector<MessageMatch> matches;
  std::vector<std::size_t> unmatched_sends;  ///< sent but never received
  std::vector<std::size_t> unmatched_recvs;  ///< received with no send record
};

/// An immutable execution history: the merged event stream of one run.
///
/// Events are stored in global display order (by start time, ties by
/// rank then marker) with a per-rank index preserving each process's
/// program order.  All correctness-critical queries (markers,
/// matching) use per-rank order and sequence numbers, never wall time.
class Trace {
 public:
  Trace() = default;

  /// Builds a trace from raw events.  `constructs` may be shared with
  /// a live registry; it is only read.
  Trace(int num_ranks, std::vector<Event> events,
        std::shared_ptr<const ConstructRegistry> constructs);

  [[nodiscard]] int num_ranks() const { return num_ranks_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const Event& event(std::size_t i) const { return events_.at(i); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// The construct table (never null after construction).
  [[nodiscard]] const ConstructRegistry& constructs() const;

  /// Shared handle to the construct table.
  [[nodiscard]] std::shared_ptr<const ConstructRegistry> constructs_ptr() const {
    return constructs_;
  }

  /// Event indices of one rank, in that rank's program order.
  [[nodiscard]] const std::vector<std::size_t>& rank_events(mpi::Rank r) const;

  /// First event of `rank` whose marker equals `marker`, if any.
  [[nodiscard]] std::optional<std::size_t> find_marker(
      mpi::Rank rank, std::uint64_t marker) const;

  /// Last event of `rank` whose start time is <= `t`, if any.  This is
  /// the hit-test a vertical stopline uses to turn a mouse position
  /// into per-rank execution markers (paper §3.1).
  [[nodiscard]] std::optional<std::size_t> last_event_at_or_before(
      mpi::Rank rank, support::TimeNs t) const;

  /// Earliest start time in the trace (0 when empty).
  [[nodiscard]] support::TimeNs t_min() const { return t_min_; }

  /// Latest end time in the trace (0 when empty).
  [[nodiscard]] support::TimeNs t_max() const { return t_max_; }

  /// Indices of events whose [t_start, t_end] intersects [t0, t1], in
  /// display order.  Used by the visualizer's zoom window and by the
  /// trace graph's rescan-on-zoom.
  [[nodiscard]] std::vector<std::size_t> events_in_window(
      support::TimeNs t0, support::TimeNs t1) const;

  /// Pairs send records with receive records using per-channel FIFO
  /// counting (the non-overtaking rule; see `Event` docs) and reports
  /// the unmatched remainder.
  [[nodiscard]] MatchReport match_report() const;

 private:
  int num_ranks_ = 0;
  std::vector<Event> events_;
  std::vector<std::vector<std::size_t>> by_rank_;
  std::shared_ptr<const ConstructRegistry> constructs_;
  support::TimeNs t_min_ = 0;
  support::TimeNs t_max_ = 0;
};

}  // namespace tdbg::trace
