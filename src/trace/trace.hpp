#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "support/executor.hpp"
#include "trace/construct_registry.hpp"
#include "trace/event.hpp"
#include "trace/store.hpp"

namespace tdbg::trace {

/// A send record paired with the receive that consumed it.
struct MessageMatch {
  std::size_t send_index = 0;  ///< global display index
  std::size_t recv_index = 0;
};

/// The unique send/receive matching plus the leftovers the debugger's
/// communication supervision shows the user (paper §4.4: "the debugger
/// maintains a list of unmatched sends and receives").  Computed by
/// `analysis::Session::match_report()` — the trace layer only defines
/// the data type so lower layers (causality, graph, replay) can accept
/// it as a parameter without linking the analysis library.
struct MatchReport {
  std::vector<MessageMatch> matches;
  std::vector<std::size_t> unmatched_sends;  ///< sent but never received
  std::vector<std::size_t> unmatched_recvs;  ///< received with no send record
};

/// Per-rank program-order index over the whole trace, the shared
/// artifact that replaces the three hand-rolled builders causality,
/// races, and the action graph used to carry.  Built (and kept fresh
/// incrementally) by `analysis::Session::rank_index()`; defined here so
/// the causality and graph layers can consume it by reference.
struct RankIndex {
  /// `seq[r][k]` = global display index of rank r's k-th event in
  /// program order (marker order, per the store contract).
  std::vector<std::vector<std::size_t>> seq;
  /// `position[i]` = program-order position of display index i within
  /// its own rank (the inverse of `seq`).
  std::vector<std::size_t> position;
};

/// An immutable execution history: the merged event stream of one run.
///
/// `Trace` is a query facade over a `TraceStore` backend — either the
/// eager in-memory vector (collector output, v1 files) or the lazy
/// segmented store (v2 files opened by footer).  Events are addressed
/// by global display order (start time, ties by rank then marker);
/// each rank's program order is exposed through `rank_event` /
/// `for_each_rank_event`.  All correctness-critical queries (markers,
/// matching) use per-rank order and sequence numbers, never wall time.
///
/// Prefer the cursor/range queries (`for_each_event`,
/// `for_each_rank_event`, `for_each_in_window`, `events_in_window`,
/// `find_marker`, `last_event_at_or_before`) — they never force full
/// materialization on a lazy backend.  `events()` / `rank_events()`
/// remain as compatibility escape hatches that materialize (and cache)
/// the whole stream on a segmented store.
class Trace {
 public:
  Trace() = default;

  /// Builds an in-memory trace from raw events.  `constructs` may be
  /// shared with a live registry; it is only read.
  Trace(int num_ranks, std::vector<Event> events,
        std::shared_ptr<const ConstructRegistry> constructs);

  /// Wraps an existing store (e.g. a `SegmentedTraceStore`).
  explicit Trace(std::shared_ptr<const TraceStore> store);

  [[nodiscard]] int num_ranks() const {
    return store_ ? store_->num_ranks() : 0;
  }
  [[nodiscard]] std::size_t size() const { return store_ ? store_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// The event at global display index `i`, by value: a segmented
  /// backend may evict the backing segment as soon as this returns, so
  /// no reference into storage can be handed out.
  [[nodiscard]] Event event(std::size_t i) const;

  /// True when the backend loads segments lazily instead of holding
  /// every event in memory.
  [[nodiscard]] bool is_lazy() const { return store_ && inmem_ == nullptr; }

  /// The storage backend (null for a default-constructed trace).
  [[nodiscard]] const std::shared_ptr<const TraceStore>& store() const {
    return store_;
  }

  /// The construct table (never null after construction).
  [[nodiscard]] const ConstructRegistry& constructs() const;

  /// Shared handle to the construct table.
  [[nodiscard]] std::shared_ptr<const ConstructRegistry> constructs_ptr() const;

  /// Number of events recorded by `rank`.
  [[nodiscard]] std::size_t rank_size(mpi::Rank rank) const;

  /// Global display index of `rank`'s `pos`-th event in program order.
  [[nodiscard]] std::size_t rank_event(mpi::Rank rank, std::size_t pos) const;

  /// Visits every event in display order with its global index.
  void for_each_event(const EventVisitor& visit) const;

  /// Visits one rank's events in program order.
  void for_each_rank_event(mpi::Rank rank, const EventVisitor& visit) const;

  /// Visits the events whose [t_start, t_end] intersects [t0, t1], in
  /// display order.  On a segmented backend only the segments the
  /// window touches are loaded.
  void for_each_in_window(support::TimeNs t0, support::TimeNs t1,
                          const EventVisitor& visit) const;

  /// First event of `rank` whose marker equals `marker`, if any.
  /// Binary search over the rank's program-order index.
  [[nodiscard]] std::optional<std::size_t> find_marker(
      mpi::Rank rank, std::uint64_t marker) const;

  /// Last event of `rank` whose start time is <= `t`, if any.  This is
  /// the hit-test a vertical stopline uses to turn a mouse position
  /// into per-rank execution markers (paper §3.1).
  [[nodiscard]] std::optional<std::size_t> last_event_at_or_before(
      mpi::Rank rank, support::TimeNs t) const;

  /// Earliest start time in the trace (0 when empty).
  [[nodiscard]] support::TimeNs t_min() const {
    return store_ ? store_->t_min() : 0;
  }

  /// Latest end time in the trace (0 when empty).
  [[nodiscard]] support::TimeNs t_max() const {
    return store_ ? store_->t_max() : 0;
  }

  /// Indices of events whose [t_start, t_end] intersects [t0, t1], in
  /// display order.  Used by the visualizer's zoom window and by the
  /// trace graph's rescan-on-zoom.
  [[nodiscard]] std::vector<std::size_t> events_in_window(
      support::TimeNs t0, support::TimeNs t1) const;

  // --- Segment-parallel map-reduce -------------------------------------
  //
  // The store exposes the stream as display-order segments (the v2
  // directory's segments, or fixed chunks in memory); segment
  // boundaries depend only on the history, never on thread count.
  // `map_reduce` computes one `Partial` per segment on the analysis
  // pool and folds them **in segment-index order** — completion order
  // is irrelevant — so any quantity built from order-insensitive
  // per-segment parts is bit-identical at 1, 2, or 64 threads.

  /// Number of display-order segments (0 when empty).
  [[nodiscard]] std::size_t segment_count() const {
    return store_ ? store_->segment_count() : 0;
  }

  /// Global display-index range [begin, end) of segment `seg`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> segment_range(
      std::size_t seg) const;

  /// Visits segment `seg`'s events in display order.  Thread-safe.
  void for_each_in_segment(std::size_t seg, const EventVisitor& visit) const;

  /// Like `for_each_in_segment`, but the caller promises to read only
  /// the fields selected by `cols` (store.hpp's `kCol*` bits).  A
  /// columnar backend decodes just those columns and leaves the other
  /// fields value-initialized; other backends deliver full events.
  void for_each_in_segment_cols(std::size_t seg, ColumnSet cols,
                                const EventVisitor& visit) const;

  /// Zone summary of segment `seg` (kind/rank presence, time span)
  /// when the backend's directory has one — lets analysis passes skip
  /// segments, or request fewer columns, without touching event data.
  [[nodiscard]] std::optional<SegmentZones> segment_zones(
      std::size_t seg) const;

  /// Visits `rank`'s events whose [t_start, t_end] intersects
  /// [t0, t1], in program order.  A segmented backend prunes whole
  /// segments via the directory and, on a v3 file, probes the
  /// rank/time columns before paying a full decode.
  void for_each_rank_in_window(mpi::Rank rank, support::TimeNs t0,
                               support::TimeNs t1,
                               const EventVisitor& visit) const;

  /// Column-restricted variant of `for_each_rank_in_window`: the
  /// caller promises to read only the fields named by `cols` (plus
  /// rank and times, which the predicate needs anyway).  On a v3 file
  /// the backend decodes just those columns — a timeline zoom touching
  /// rank/marker/times reads a few bytes per event instead of the full
  /// row.  Other backends deliver full events; either way the visited
  /// index/field pairs for the selected columns are identical.
  void for_each_rank_in_window_cols(mpi::Rank rank, support::TimeNs t0,
                                    support::TimeNs t1, ColumnSet cols,
                                    const EventVisitor& visit) const;

  /// Runs `body(seg)` for every segment on the analysis pool.  `site`
  /// tags the telemetry spans and `exec.tasks.<site>` counter.  Bodies
  /// must not touch this trace's memoized getters (`events`,
  /// `rank_events`).
  void parallel_for_each_segment(
      std::string_view site,
      const std::function<void(std::size_t seg)>& body) const;

  /// One `Partial` per segment, built in parallel, folded serially in
  /// segment order: `map(seg, partials[seg])` on the pool, then
  /// `reduce(acc, std::move(partials[seg]))` for seg = 0, 1, ....
  /// Exceptions from `map` propagate to the caller.
  template <typename Partial, typename Map, typename Reduce>
  Partial map_reduce(std::string_view site, Map&& map,
                     Reduce&& reduce) const {
    const std::size_t nseg = segment_count();
    std::vector<Partial> partials(nseg);
    parallel_for_each_segment(
        site, [&](std::size_t seg) { map(seg, partials[seg]); });
    Partial acc{};
    for (std::size_t seg = 0; seg < nseg; ++seg) {
      reduce(acc, std::move(partials[seg]));
    }
    return acc;
  }

  /// Compatibility: the full event vector in display order.  On a
  /// segmented backend this materializes (once, cached) — prefer the
  /// cursor queries above.
  [[nodiscard]] const std::vector<Event>& events() const;

  /// Compatibility: event indices of one rank, in that rank's program
  /// order.  Materialized lazily (once, cached) on a segmented
  /// backend.
  [[nodiscard]] const std::vector<std::size_t>& rank_events(
      mpi::Rank rank) const;

 private:
  /// Lazily computed compatibility caches, shared across copies of the
  /// facade.  Analysis results are NOT cached here — that is
  /// `analysis::Session`'s job; the trace is a pure storage facade.
  struct Caches {
    std::mutex mu;
    std::optional<std::vector<Event>> events;
    std::vector<std::optional<std::vector<std::size_t>>> rank_index;
  };

  std::shared_ptr<const TraceStore> store_;
  /// Fast path: non-null when the backend is the in-memory store, so
  /// `events()` / `rank_events()` stay zero-copy.
  const InMemoryTraceStore* inmem_ = nullptr;
  std::shared_ptr<Caches> caches_;
};

}  // namespace tdbg::trace
