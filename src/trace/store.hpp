#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpi/types.hpp"
#include "support/clock.hpp"
#include "trace/construct_registry.hpp"
#include "trace/event.hpp"
#include "trace/wire.hpp"

/// \file store.hpp
/// Storage backends behind `trace::Trace`.
///
/// `Trace` is a thin query facade; the event history itself lives in a
/// `TraceStore`.  Two implementations exist:
///
///   - `InMemoryTraceStore` — the seed behavior: every event in one
///     sorted vector plus per-rank index vectors.  Built by the
///     collector, by `read_trace`, and by tests.
///   - `SegmentedTraceStore` — a v2 trace file opened by its footer
///     directory alone.  Event segments are loaded lazily on first
///     touch and held in a small LRU cache, so opening a 10M-event
///     trace costs O(directory) and a zoomed window query touches only
///     the segments it intersects.
///
/// All indices exchanged through this interface are *global display
/// indices*: positions in the trace-wide (t_start, rank, marker)
/// order, identical across both backends for the same history.

namespace tdbg::trace {

/// Visitor for event cursors.  Receives the event's global display
/// index and a reference that is only valid during the call (the
/// segmented store may evict the backing segment afterwards) — copy
/// the event if it must outlive the visit.
using EventVisitor = std::function<void(std::size_t index, const Event& e)>;

/// Bitmask selecting a subset of event fields for column-pruned
/// scans.  Bit i selects storage column i of the v3 columnar format
/// (see columnar.hpp for the fixed order).  The mask is a *permission*:
/// a columnar backend decodes only the selected columns and leaves the
/// other fields of the visited events value-initialized; row-major and
/// in-memory backends ignore it and deliver full events.
using ColumnSet = std::uint32_t;
inline constexpr ColumnSet kColKind = 1u << 0;
inline constexpr ColumnSet kColRank = 1u << 1;
inline constexpr ColumnSet kColMarker = 1u << 2;
inline constexpr ColumnSet kColConstruct = 1u << 3;
inline constexpr ColumnSet kColTStart = 1u << 4;
inline constexpr ColumnSet kColTEnd = 1u << 5;
inline constexpr ColumnSet kColPeer = 1u << 6;
inline constexpr ColumnSet kColTag = 1u << 7;
inline constexpr ColumnSet kColChannelSeq = 1u << 8;
inline constexpr ColumnSet kColBytes = 1u << 9;
inline constexpr ColumnSet kColWildcard = 1u << 10;
inline constexpr ColumnSet kAllEventColumns = (1u << wire::kNumColumnsV3) - 1;

/// Zone summary of one segment, from the trace directory: which event
/// kinds and ranks appear, whether a wildcard receive may appear, and
/// the segment's time span.  Query layers use it to skip whole
/// segments — or decode fewer columns — without touching event data.
struct SegmentZones {
  std::uint32_t kind_mask = 0;  ///< bit k set iff some event has kind k
  std::uint64_t rank_mask = 0;  ///< bit min(rank, 63) set iff rank appears
  bool may_have_wildcard = false;
  support::TimeNs t_min = 0;
  support::TimeNs t_max = 0;
};

/// Read-only random/sequential access to one recorded history.
class TraceStore {
 public:
  virtual ~TraceStore() = default;

  [[nodiscard]] virtual int num_ranks() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual support::TimeNs t_min() const = 0;
  [[nodiscard]] virtual support::TimeNs t_max() const = 0;
  [[nodiscard]] virtual std::shared_ptr<const ConstructRegistry> constructs()
      const = 0;

  /// The event at global display index `i` (by value: the backing
  /// segment may be evicted as soon as this returns).
  [[nodiscard]] virtual Event event(std::size_t i) const = 0;

  /// Visits every event in display order.
  virtual void for_each(const EventVisitor& visit) const = 0;

  /// Visits the events whose [t_start, t_end] intersects [t0, t1], in
  /// display order.  The segmented store prunes whole segments via the
  /// directory's [t_min, t_max] before touching event data.
  virtual void for_each_in_window(support::TimeNs t0, support::TimeNs t1,
                                  const EventVisitor& visit) const = 0;

  /// Number of events recorded by `rank`.
  [[nodiscard]] virtual std::size_t rank_size(mpi::Rank rank) const = 0;

  /// Global display index of `rank`'s `pos`-th event in that rank's
  /// program order.
  [[nodiscard]] virtual std::size_t rank_event(mpi::Rank rank,
                                               std::size_t pos) const = 0;

  /// Visits one rank's events in program order.
  virtual void for_each_rank_event(mpi::Rank rank,
                                   const EventVisitor& visit) const = 0;

  /// First event of `rank` whose marker equals `marker`, if any.
  [[nodiscard]] virtual std::optional<std::size_t> find_marker(
      mpi::Rank rank, std::uint64_t marker) const = 0;

  /// Last event of `rank` whose start time is <= `t`, if any.
  [[nodiscard]] virtual std::optional<std::size_t> last_event_at_or_before(
      mpi::Rank rank, support::TimeNs t) const = 0;

  // --- Segment view (the unit of analysis parallelism) ----------------
  //
  // Both backends expose the stream as consecutive display-order
  // segments: the v2 file's directory segments for the lazy store,
  // fixed-size chunks for the in-memory store.  Segment boundaries
  // depend only on the history (never on thread count), which is what
  // lets `Trace::map_reduce` merge per-segment partials in segment
  // order and produce bit-identical results at any parallelism.

  /// Number of segments (0 for an empty trace).
  [[nodiscard]] virtual std::size_t segment_count() const = 0;

  /// Global display-index range [begin, end) of segment `seg`.
  [[nodiscard]] virtual std::pair<std::size_t, std::size_t> segment_range(
      std::size_t seg) const = 0;

  /// Visits segment `seg`'s events in display order.  Safe to call
  /// concurrently from pool workers on different (or the same)
  /// segments.
  virtual void for_each_in_segment(std::size_t seg,
                                   const EventVisitor& visit) const = 0;

  /// Zone summary of segment `seg`, when the backend has one.  A v3
  /// footer carries exact presence masks; a v2 footer yields a
  /// conservative summary (every kind possible, rank mask from the
  /// per-rank counts); the in-memory store has none.
  [[nodiscard]] virtual std::optional<SegmentZones> segment_zones(
      std::size_t seg) const {
    (void)seg;
    return std::nullopt;
  }

  /// Like `for_each_in_segment`, but the caller promises to read only
  /// the fields selected by `cols` — a columnar backend decodes just
  /// those columns (leaving the rest value-initialized) and skips the
  /// decoded-segment cache.  Default: full events.  Thread-safe.
  virtual void for_each_in_segment_cols(std::size_t seg, ColumnSet cols,
                                        const EventVisitor& visit) const {
    (void)cols;
    for_each_in_segment(seg, visit);
  }

  /// Visits `rank`'s events whose [t_start, t_end] intersects
  /// [t0, t1], in program order.  The segmented store prunes whole
  /// segments through the directory (time spans, per-rank counts) and,
  /// on a v3 file, peeks at the rank/time columns of the surviving
  /// segments before paying a full decode.
  virtual void for_each_rank_in_window(mpi::Rank rank, support::TimeNs t0,
                                       support::TimeNs t1,
                                       const EventVisitor& visit) const;

  /// Like `for_each_rank_in_window`, but the caller promises to read
  /// only the fields selected by `cols` (the timeline-zoom shape:
  /// rank + marker + times).  A columnar backend answers from the
  /// rank/time probe columns plus `cols` alone, never materializing
  /// full events; other backends deliver full events.  Thread-safe.
  virtual void for_each_rank_in_window_cols(mpi::Rank rank,
                                            support::TimeNs t0,
                                            support::TimeNs t1,
                                            ColumnSet cols,
                                            const EventVisitor& visit) const {
    (void)cols;
    for_each_rank_in_window(rank, t0, t1, visit);
  }
};

/// Chunk size the in-memory store presents as its "segments".  Small
/// enough that moderate test traces parallelize, fixed so results
/// never depend on thread count.
inline constexpr std::size_t kInMemorySegmentEvents = 1u << 13;

/// The seed storage: one eagerly sorted vector plus per-rank indexes.
///
/// Accepts events in any order; sorts them into display order and
/// rebuilds per-rank program order by marker, exactly as the original
/// `Trace` constructor did.
class InMemoryTraceStore final : public TraceStore {
 public:
  InMemoryTraceStore(int num_ranks, std::vector<Event> events,
                     std::shared_ptr<const ConstructRegistry> constructs);

  [[nodiscard]] int num_ranks() const override { return num_ranks_; }
  [[nodiscard]] std::size_t size() const override { return events_.size(); }
  [[nodiscard]] support::TimeNs t_min() const override { return t_min_; }
  [[nodiscard]] support::TimeNs t_max() const override { return t_max_; }
  [[nodiscard]] std::shared_ptr<const ConstructRegistry> constructs()
      const override {
    return constructs_;
  }

  [[nodiscard]] Event event(std::size_t i) const override {
    return events_.at(i);
  }
  void for_each(const EventVisitor& visit) const override;
  void for_each_in_window(support::TimeNs t0, support::TimeNs t1,
                          const EventVisitor& visit) const override;
  [[nodiscard]] std::size_t rank_size(mpi::Rank rank) const override;
  [[nodiscard]] std::size_t rank_event(mpi::Rank rank,
                                       std::size_t pos) const override;
  void for_each_rank_event(mpi::Rank rank,
                           const EventVisitor& visit) const override;
  [[nodiscard]] std::optional<std::size_t> find_marker(
      mpi::Rank rank, std::uint64_t marker) const override;
  [[nodiscard]] std::optional<std::size_t> last_event_at_or_before(
      mpi::Rank rank, support::TimeNs t) const override;
  [[nodiscard]] std::size_t segment_count() const override;
  [[nodiscard]] std::pair<std::size_t, std::size_t> segment_range(
      std::size_t seg) const override;
  void for_each_in_segment(std::size_t seg,
                           const EventVisitor& visit) const override;

  /// Zero-copy views for the `Trace::events()` / `rank_events()`
  /// compatibility surface.
  [[nodiscard]] const std::vector<Event>& events_vector() const {
    return events_;
  }
  [[nodiscard]] const std::vector<std::size_t>& rank_index(
      mpi::Rank rank) const;

 private:
  int num_ranks_ = 0;
  std::vector<Event> events_;
  std::vector<std::vector<std::size_t>> by_rank_;
  std::shared_ptr<const ConstructRegistry> constructs_;
  support::TimeNs t_min_ = 0;
  support::TimeNs t_max_ = 0;
};

/// Residency counters for the segmented store's LRU cache.  `loads`
/// counts segment reads from disk, `hits` cache hits, `evictions`
/// segments dropped; `resident_segments`/`resident_bytes` describe the
/// cache right now.
struct SegmentCacheStats {
  std::uint64_t loads = 0;
  std::uint64_t hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t prefetches = 0;  ///< async segment loads issued
  std::size_t resident_segments = 0;
  std::size_t resident_bytes = 0;
  // Compressed-blob tier (v3 files only): raw segment blocks kept
  // resident so repeated decodes skip disk entirely.
  std::uint64_t blob_loads = 0;  ///< compressed blocks read from disk
  std::uint64_t blob_hits = 0;   ///< decodes served from resident blocks
  std::size_t compressed_segments = 0;  ///< blocks resident right now
  std::size_t compressed_bytes = 0;
  // Column-projection tier (v3 only): decoded column arrays kept for
  // repeated narrow queries (window scans); see `projection()`.
  std::uint64_t projection_loads = 0;  ///< projections decoded
  std::uint64_t projection_hits = 0;   ///< queries served from a resident one
  std::size_t projections = 0;         ///< projections resident right now
  std::size_t projection_bytes = 0;
};

/// Lazily loads a v2/v3 trace file through its footer directory.
///
/// Requires a display-sorted stream with monotone per-rank markers
/// (the writer records both as footer flags) — that is what turns
/// every query into a directory binary search.  `open_trace` falls
/// back to the eager reader when the flags are absent.
///
/// On a v3 file the store is three-tiered: decoded segments sit in the
/// LRU below; the *compressed* column blocks are kept in a byte-bounded
/// LRU of their own (budget: what `cache_segments` decoded segments
/// would have cost as v2 rows, so the configured memory envelope holds
/// ~4-6x more trace); and narrow queries additionally keep *column
/// projections* — the decoded u64 arrays of just the columns a query
/// touched — in a third byte-bounded LRU.  A projection of four
/// columns costs 32 bytes/event where a decoded row costs
/// `sizeof(Event)`, so repeated window queries keep several times more
/// of the trace decoded-resident than the row cache could.  Column-
/// pruned scans (`for_each_in_segment_cols`) and the v3 full sweep
/// (`for_each`) decode straight from the resident blocks into
/// per-thread scratch and never populate the decoded LRU.
///
/// Thread-safe for any number of concurrent readers:
///
///   - segment IO uses `pread` on a shared descriptor (no seek state),
///     and decoding runs *outside* the cache lock, so two workers can
///     load two different segments truly in parallel;
///   - the LRU index itself sits behind one mutex, held only for
///     lookups and installs, with a `shared_future` per in-flight load
///     so concurrent misses on the same segment share one read;
///   - loaded segments are handed out as `shared_ptr`s (pinned-segment
///     refcounts): an eviction drops the cache slot, never the data a
///     reader is scanning.
///
/// With a multi-thread executor installed, the sequential cursors also
/// prefetch segment k+1 through `Executor::async` while the caller
/// consumes segment k — the read-ahead pipeline `TraceOpenOptions::
/// prefetch` controls.
class SegmentedTraceStore final : public TraceStore {
 public:
  /// Opens `path`, whose parsed footer the caller already has (from
  /// `try_read_footer`).  `num_ranks` comes from the file header;
  /// `cache_segments` bounds resident segments (minimum 1);
  /// `prefetch` enables the sequential read-ahead pipeline.
  SegmentedTraceStore(std::filesystem::path path, int num_ranks,
                      wire::Footer footer, std::size_t cache_segments,
                      bool prefetch = true);

  ~SegmentedTraceStore() override;

  [[nodiscard]] int num_ranks() const override { return num_ranks_; }
  [[nodiscard]] std::size_t size() const override {
    return static_cast<std::size_t>(footer_.event_count);
  }
  [[nodiscard]] support::TimeNs t_min() const override { return t_min_; }
  [[nodiscard]] support::TimeNs t_max() const override { return t_max_; }
  [[nodiscard]] std::shared_ptr<const ConstructRegistry> constructs()
      const override {
    return constructs_;
  }

  [[nodiscard]] Event event(std::size_t i) const override;
  void for_each(const EventVisitor& visit) const override;
  void for_each_in_window(support::TimeNs t0, support::TimeNs t1,
                          const EventVisitor& visit) const override;
  [[nodiscard]] std::size_t rank_size(mpi::Rank rank) const override;
  [[nodiscard]] std::size_t rank_event(mpi::Rank rank,
                                       std::size_t pos) const override;
  void for_each_rank_event(mpi::Rank rank,
                           const EventVisitor& visit) const override;
  [[nodiscard]] std::optional<std::size_t> find_marker(
      mpi::Rank rank, std::uint64_t marker) const override;
  [[nodiscard]] std::optional<std::size_t> last_event_at_or_before(
      mpi::Rank rank, support::TimeNs t) const override;

  [[nodiscard]] std::size_t segment_count() const override {
    return footer_.segments.size();
  }
  [[nodiscard]] std::pair<std::size_t, std::size_t> segment_range(
      std::size_t seg) const override;
  void for_each_in_segment(std::size_t seg,
                           const EventVisitor& visit) const override;
  [[nodiscard]] std::optional<SegmentZones> segment_zones(
      std::size_t seg) const override;
  void for_each_in_segment_cols(std::size_t seg, ColumnSet cols,
                                const EventVisitor& visit) const override;
  void for_each_rank_in_window(mpi::Rank rank, support::TimeNs t0,
                               support::TimeNs t1,
                               const EventVisitor& visit) const override;
  void for_each_rank_in_window_cols(mpi::Rank rank, support::TimeNs t0,
                                    support::TimeNs t1, ColumnSet cols,
                                    const EventVisitor& visit) const override;
  [[nodiscard]] SegmentCacheStats cache_stats() const;

 private:
  /// One resident segment: its events in stream order plus, per rank,
  /// the in-segment positions of that rank's events (stream order ==
  /// program order under the monotone-marker flag).
  struct LoadedSegment {
    std::vector<Event> events;
    std::vector<std::vector<std::uint32_t>> rank_positions;
  };
  using SegmentPtr = std::shared_ptr<const LoadedSegment>;
  using BlobPtr = std::shared_ptr<const std::vector<std::byte>>;

  /// Decoded logical values of a column subset of one segment, kept
  /// column-major: `col[c][k]` is row k's field c as a u64 bit pattern
  /// (signed fields two's-complement).  Only columns in `cols` are
  /// populated.
  struct ColumnProjection {
    ColumnSet cols = 0;
    std::size_t bytes = 0;
    std::array<std::vector<std::uint64_t>, wire::kNumColumnsV3> col;
  };
  using ProjectionPtr = std::shared_ptr<const ColumnProjection>;

  [[nodiscard]] SegmentPtr segment(std::size_t seg) const;
  /// pread + decode of one segment; no lock held.
  [[nodiscard]] SegmentPtr load_segment(std::size_t seg) const;
  /// The raw bytes of segment `seg`'s on-disk block, through the
  /// compressed-blob LRU (v3; also used as the read path for v2).
  [[nodiscard]] BlobPtr blob(std::size_t seg) const;
  /// The decoded segment if it is resident right now (LRU-touching),
  /// else null — lets column-pruned scans reuse full decodes for free.
  [[nodiscard]] SegmentPtr resident_segment(std::size_t seg) const;
  /// The projection of segment `seg` onto `cols` (v3 only), through
  /// the projection LRU — decoded from the compressed block on a miss.
  [[nodiscard]] ProjectionPtr projection(std::size_t seg,
                                         ColumnSet cols) const;
  /// Installs a loaded segment into the LRU (evicting), under mu_.
  void install(std::size_t seg, const SegmentPtr& loaded) const;
  /// Queues an async load of `seg` if it is absent and a parallel
  /// executor is available.
  void maybe_prefetch(std::size_t seg) const;
  [[nodiscard]] std::size_t segment_of_index(std::size_t i) const;

  std::filesystem::path path_;
  wire::Footer footer_;
  int num_ranks_ = 0;
  support::TimeNs t_min_ = 0;
  support::TimeNs t_max_ = 0;
  std::shared_ptr<const ConstructRegistry> constructs_;
  bool prefetch_enabled_ = true;

  /// Global display index of each segment's first event (size =
  /// segments + 1; last entry = event_count).
  std::vector<std::size_t> seg_first_index_;
  /// Per rank: that rank's program-order position at each segment's
  /// start (size = segments + 1; last entry = the rank's total).
  std::vector<std::vector<std::size_t>> rank_first_pos_;

  int fd_ = -1;  ///< shared pread descriptor (immutable after open)
  std::size_t cache_segments_ = 1;
  mutable std::mutex mu_;  ///< guards lru_/cache_/loading_/stats_
  mutable std::list<std::size_t> lru_;  ///< most recent first
  mutable std::vector<SegmentPtr> cache_;
  mutable std::unordered_map<std::size_t, std::shared_future<SegmentPtr>>
      loading_;
  mutable SegmentCacheStats stats_;

  /// Compressed-blob tier (v3): raw segment blocks under their own
  /// lock so a blob hit never contends with the decoded-segment LRU.
  std::size_t blob_budget_ = 0;  ///< bytes; 0 disables the tier
  mutable std::mutex blob_mu_;
  mutable std::list<std::size_t> blob_lru_;  ///< most recent first
  mutable std::vector<BlobPtr> blob_cache_;
  mutable std::size_t blob_bytes_ = 0;
  mutable std::uint64_t blob_hits_ = 0;
  mutable std::uint64_t blob_loads_ = 0;

  /// Column-projection tier (v3): decoded column arrays keyed by
  /// (segment, column set), byte-bounded by what the decoded-row LRU
  /// is allowed (`cache_segments` segments of `sizeof(Event)` rows).
  std::size_t proj_budget_ = 0;  ///< bytes; 0 disables the tier
  mutable std::mutex proj_mu_;
  mutable std::list<std::pair<std::uint64_t, ProjectionPtr>> proj_lru_;
  mutable std::unordered_map<std::uint64_t,
                             std::list<std::pair<std::uint64_t,
                                                 ProjectionPtr>>::iterator>
      proj_map_;
  mutable std::size_t proj_bytes_ = 0;
  mutable std::uint64_t proj_hits_ = 0;
  mutable std::uint64_t proj_loads_ = 0;

  /// Outstanding async prefetch tasks; the destructor waits for zero
  /// before closing fd_.
  mutable std::mutex prefetch_mu_;
  mutable std::condition_variable prefetch_cv_;
  mutable std::size_t prefetch_inflight_ = 0;
};

}  // namespace tdbg::trace
