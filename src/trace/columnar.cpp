#include "trace/columnar.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <functional>
#include <string>

#include "support/error.hpp"

namespace tdbg::trace::columnar {

namespace {

constexpr const char* kColumnNames[wire::kNumColumnsV3] = {
    "kind", "rank",    "marker", "construct",   "t_start", "t_end",
    "peer", "tag",     "channel_seq", "bytes",  "wildcard"};

constexpr const char* kEncodingNames[kNumEncodings] = {
    "const", "bitpack", "varint", "delta+varint", "raw"};

/// Widest bitpack the single-word decode loop supports: one unaligned
/// 8-byte load always covers a value starting at any bit offset within
/// a byte (7 + 56 <= 64).
constexpr unsigned kMaxBitPackWidth = 56;

inline std::uint64_t zigzag64(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag64(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline std::size_t varint_size(std::uint64_t v) {
  return (static_cast<std::size_t>(std::bit_width(v | 1)) + 6) / 7;
}

/// Storage transform: field -> u64 column value (bijective per row;
/// `t_end` depends on the same row's `t_start`).
std::uint64_t storage_value(const Event& e, std::size_t col) {
  switch (col) {
    case kColKind: return static_cast<std::uint8_t>(e.kind);
    case kColRank: return static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(e.rank));
    case kColMarker: return e.marker;
    case kColConstruct:
      // kNoConstruct (0xffffffff) packs as 0 so runtime-synthesized
      // events const- or bitpack-encode to almost nothing.
      return static_cast<std::uint32_t>(e.construct + 1);
    case kColTStart: return zigzag64(e.t_start);
    case kColTEnd: return zigzag64(e.t_end - e.t_start);
    case kColPeer: return zigzag64(e.peer);
    case kColTag: return zigzag64(e.tag);
    case kColChannelSeq: return e.channel_seq;
    case kColBytes: return e.bytes;
    case kColWildcard: return e.wildcard ? 1 : 0;
    default: return 0;
  }
}

/// Logical value for the zone map (signed, so min/max match the
/// query-level comparisons).
std::int64_t logical_value(const Event& e, std::size_t col) {
  switch (col) {
    case kColKind: return static_cast<std::uint8_t>(e.kind);
    case kColRank: return e.rank;
    case kColMarker: return static_cast<std::int64_t>(e.marker);
    case kColConstruct: return static_cast<std::int64_t>(e.construct);
    case kColTStart: return e.t_start;
    case kColTEnd: return e.t_end;
    case kColPeer: return e.peer;
    case kColTag: return e.tag;
    case kColChannelSeq: return static_cast<std::int64_t>(e.channel_seq);
    case kColBytes: return static_cast<std::int64_t>(e.bytes);
    case kColWildcard: return e.wildcard ? 1 : 0;
    default: return 0;
  }
}

void append_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

[[noreturn]] void column_error(const std::filesystem::path& path,
                               std::size_t seg, std::size_t col,
                               const std::string& what) {
  throw FormatError(what + " in column '" + kColumnNames[col] +
                    "' of segment " + std::to_string(seg) +
                    " in trace file " + path.string());
}

[[noreturn]] void segment_error(const std::filesystem::path& path,
                                std::size_t seg, const std::string& what) {
  throw FormatError(what + " in segment " + std::to_string(seg) +
                    " in trace file " + path.string());
}

/// Rows per decode tile.  The decode loop processes the segment in
/// tiles: for each tile, every selected column decodes its slice and
/// scatters it into the same ~9 KiB run of events — small enough to
/// stay L1-resident across all eleven column passes instead of the
/// whole multi-megabyte segment being re-walked once per column.
constexpr std::size_t kTileRows = 128;

/// Sequential decode state of one varint/delta-varint column, carried
/// across tiles (varints have no random access).
struct VarintCursor {
  const unsigned char* p = nullptr;
  const unsigned char* end = nullptr;
  std::uint64_t prev = 0;
};

/// Converts one stored value (the on-wire u64 logical form, zigzag
/// still applied for signed fields) into the event's field `C`.
template <std::size_t C>
inline void store_field(Event& e, std::uint64_t v) {
  if constexpr (C == kColKind) {
    e.kind = static_cast<EventKind>(static_cast<std::uint8_t>(v));
  } else if constexpr (C == kColRank) {
    e.rank = static_cast<mpi::Rank>(static_cast<std::uint32_t>(v));
  } else if constexpr (C == kColMarker) {
    e.marker = v;
  } else if constexpr (C == kColConstruct) {
    e.construct = static_cast<std::uint32_t>(v) - 1;
  } else if constexpr (C == kColTStart) {
    e.t_start = unzigzag64(v);
  } else if constexpr (C == kColTEnd) {
    // Storage form is a row-local delta; t_start is always decoded
    // first (column order + the implicit-select rule).
    e.t_end = e.t_start + unzigzag64(v);
  } else if constexpr (C == kColPeer) {
    e.peer = static_cast<mpi::Rank>(unzigzag64(v));
  } else if constexpr (C == kColTag) {
    e.tag = static_cast<mpi::Tag>(unzigzag64(v));
  } else if constexpr (C == kColChannelSeq) {
    e.channel_seq = v;
  } else if constexpr (C == kColBytes) {
    e.bytes = v;
  } else {
    static_assert(C == kColWildcard, "unhandled column");
    e.wildcard = v != 0;
  }
}

/// Columns whose stored domain is a strict subset of u64 and must be
/// range-checked before the narrowing cast above.
template <std::size_t C>
constexpr bool kValidatedColumn =
    C == kColKind || C == kColRank || C == kColConstruct;

template <std::size_t C>
void check_max(std::uint64_t vmax, int num_ranks,
               const std::filesystem::path& path, std::size_t seg) {
  if constexpr (C == kColKind) {
    if (vmax > wire::kMaxEventKind) {
      column_error(path, seg, C,
                   "unknown event kind " + std::to_string(vmax));
    }
  } else if constexpr (C == kColRank) {
    if (num_ranks >= 0 && vmax >= static_cast<std::uint64_t>(num_ranks)) {
      column_error(path, seg, C,
                   "event rank " + std::to_string(vmax) + " out of range");
    }
  } else if constexpr (C == kColConstruct) {
    if (vmax > 0xffffffffull) {
      column_error(path, seg, C, "construct id out of range");
    }
  }
}

/// Decodes rows [i0, i0 + cnt) of column `C` straight into the events'
/// field — no intermediate value buffer, so each tile costs one store
/// per (row, column).  Bitpack/raw columns seek directly; varint
/// columns continue from `vc` (tiles are visited in increasing row
/// order).  `n_fast` is the number of leading rows whose unaligned
/// 8-byte bitpack load lies fully inside the payload.
template <std::size_t C>
void decode_column(const ColumnMeta& m, std::span<const std::byte> payload,
                   VarintCursor& vc, std::size_t n_fast, std::size_t i0,
                   std::size_t cnt, Event* e, int num_ranks,
                   const std::filesystem::path& path, std::size_t seg) {
  std::uint64_t vmax = 0;
  switch (m.encoding) {
    case Encoding::kConst: {
      vmax = m.base;
      for (std::size_t i = 0; i < cnt; ++i) store_field<C>(e[i], m.base);
      break;
    }
    case Encoding::kBitPack: {
      const unsigned w = m.width;  // 1..56, validated by the header parse
      const std::uint64_t mask = (1ull << w) - 1;
      const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
      const std::size_t len = payload.size();
      const std::uint64_t base = m.base;
      std::size_t bitpos = i0 * w;
      std::size_t i = 0;
      const std::size_t fast =
          i0 < n_fast ? std::min(cnt, n_fast - i0) : 0;
      // Batched extraction: one 8-byte load yields every value that
      // lies fully inside the loaded word ((64 - bit_offset) / w of
      // them), instead of one load per value.
      while (i < fast) {
        std::uint64_t word;
        std::memcpy(&word, p + (bitpos >> 3), 8);
        const unsigned o = static_cast<unsigned>(bitpos & 7);
        std::uint64_t rest = word >> o;
        const std::size_t take =
            std::min<std::size_t>(fast - i, (64 - o) / w);
        for (std::size_t j = 0; j < take; ++j) {
          const std::uint64_t v = base + (rest & mask);
          rest >>= w;
          if constexpr (kValidatedColumn<C>) vmax = std::max(vmax, v);
          store_field<C>(e[i + j], v);
        }
        i += take;
        bitpos += take * w;
      }
      for (; i < cnt; ++i) {
        std::uint64_t word = 0;
        const std::size_t byteoff = bitpos >> 3;
        std::memcpy(&word, p + byteoff,
                    std::min<std::size_t>(8, len - byteoff));
        const std::uint64_t v = base + ((word >> (bitpos & 7)) & mask);
        if constexpr (kValidatedColumn<C>) vmax = std::max(vmax, v);
        store_field<C>(e[i], v);
        bitpos += w;
      }
      break;
    }
    case Encoding::kVarint:
    case Encoding::kDeltaVarint: {
      const bool delta = m.encoding == Encoding::kDeltaVarint;
      const unsigned char* p = vc.p;
      const unsigned char* const end = vc.end;
      std::uint64_t prev = vc.prev;
      for (std::size_t i = 0; i < cnt; ++i) {
        std::uint64_t v;
        // Single-byte values dominate every varint column we emit
        // (deltas and sequence gaps are small); peel that case.
        if (p != end && *p < 0x80) {
          v = *p++;
        } else {
          v = 0;
          unsigned shift = 0;
          while (true) {
            if (p == end || shift > 63) {
              column_error(path, seg, C, "corrupt varint");
            }
            const unsigned char b = *p++;
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0) break;
            shift += 7;
          }
        }
        if (delta) {
          prev += static_cast<std::uint64_t>(unzigzag64(v));
          v = prev;
        }
        if constexpr (kValidatedColumn<C>) vmax = std::max(vmax, v);
        store_field<C>(e[i], v);
      }
      vc.p = p;
      vc.prev = prev;
      break;
    }
    case Encoding::kRaw: {
      const auto* p = payload.data() + 8 * i0;
      for (std::size_t i = 0; i < cnt; ++i) {
        std::uint64_t v;
        std::memcpy(&v, p + 8 * i, 8);
        if constexpr (kValidatedColumn<C>) vmax = std::max(vmax, v);
        store_field<C>(e[i], v);
      }
      break;
    }
    default:
      column_error(path, seg, C, "unknown column encoding");
  }
  if constexpr (kValidatedColumn<C>) check_max<C>(vmax, num_ranks, path, seg);
}

/// Runtime-index dispatch into the templated per-column decoder.
void decode_column_dyn(std::size_t c, const ColumnMeta& m,
                       std::span<const std::byte> payload, VarintCursor& vc,
                       std::size_t n_fast, std::size_t i0, std::size_t cnt,
                       Event* e, int num_ranks,
                       const std::filesystem::path& path, std::size_t seg) {
  switch (c) {
    case kColKind:
      decode_column<kColKind>(m, payload, vc, n_fast, i0, cnt, e, num_ranks,
                              path, seg);
      return;
    case kColRank:
      decode_column<kColRank>(m, payload, vc, n_fast, i0, cnt, e, num_ranks,
                              path, seg);
      return;
    case kColMarker:
      decode_column<kColMarker>(m, payload, vc, n_fast, i0, cnt, e, num_ranks,
                                path, seg);
      return;
    case kColConstruct:
      decode_column<kColConstruct>(m, payload, vc, n_fast, i0, cnt, e,
                                   num_ranks, path, seg);
      return;
    case kColTStart:
      decode_column<kColTStart>(m, payload, vc, n_fast, i0, cnt, e, num_ranks,
                                path, seg);
      return;
    case kColTEnd:
      decode_column<kColTEnd>(m, payload, vc, n_fast, i0, cnt, e, num_ranks,
                              path, seg);
      return;
    case kColPeer:
      decode_column<kColPeer>(m, payload, vc, n_fast, i0, cnt, e, num_ranks,
                              path, seg);
      return;
    case kColTag:
      decode_column<kColTag>(m, payload, vc, n_fast, i0, cnt, e, num_ranks,
                             path, seg);
      return;
    case kColChannelSeq:
      decode_column<kColChannelSeq>(m, payload, vc, n_fast, i0, cnt, e,
                                    num_ranks, path, seg);
      return;
    case kColBytes:
      decode_column<kColBytes>(m, payload, vc, n_fast, i0, cnt, e, num_ranks,
                               path, seg);
      return;
    case kColWildcard:
      decode_column<kColWildcard>(m, payload, vc, n_fast, i0, cnt, e,
                                  num_ranks, path, seg);
      return;
    default:
      return;
  }
}

}  // namespace

const char* column_name(std::size_t col) {
  return col < wire::kNumColumnsV3 ? kColumnNames[col] : "?";
}

const char* encoding_name(Encoding e) {
  const auto i = static_cast<std::size_t>(e);
  return i < kNumEncodings ? kEncodingNames[i] : "?";
}

void encode_segment(std::span<const Event> events, support::BinaryWriter& w,
                    SegmentZoneInfo* zone_out) {
  const std::size_t n = events.size();
  SegmentZoneInfo zi;
  for (const Event& e : events) {
    zi.kind_mask |= 1u << static_cast<std::uint8_t>(e.kind);
    const int bit = e.rank >= 0 ? std::min(e.rank, 63) : 63;
    zi.rank_mask |= 1ull << bit;
  }

  SegmentHeader h;
  h.count = static_cast<std::uint32_t>(n);
  std::array<std::vector<std::byte>, wire::kNumColumnsV3> payloads;
  std::vector<std::uint64_t> vals(n);

  for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
    auto& zone = zi.zones[c];
    for (std::size_t i = 0; i < n; ++i) {
      vals[i] = storage_value(events[i], c);
      const std::int64_t lv = logical_value(events[i], c);
      if (i == 0) {
        zone.lo = zone.hi = lv;
      } else {
        zone.lo = std::min(zone.lo, lv);
        zone.hi = std::max(zone.hi, lv);
      }
    }
    auto& m = h.cols[c];
    auto& payload = payloads[c];
    if (n == 0) {
      m = ColumnMeta{};
      continue;
    }
    std::uint64_t vmin = vals[0];
    std::uint64_t vmax = vals[0];
    for (std::size_t i = 1; i < n; ++i) {
      vmin = std::min(vmin, vals[i]);
      vmax = std::max(vmax, vals[i]);
    }
    if (vmin == vmax) {
      m.encoding = Encoding::kConst;
      m.base = vmin;
      m.byte_len = 0;
      continue;
    }
    const unsigned width =
        static_cast<unsigned>(std::bit_width(vmax - vmin));
    const std::uint64_t size_bp =
        width <= kMaxBitPackWidth
            ? (static_cast<std::uint64_t>(n) * width + 7) / 8
            : ~0ull;
    std::uint64_t size_var = 0;
    std::uint64_t size_delta = 0;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      size_var += varint_size(vals[i]);
      size_delta += varint_size(
          zigzag64(static_cast<std::int64_t>(vals[i] - prev)));
      prev = vals[i];
    }
    const std::uint64_t size_raw = 8ull * n;
    const std::uint64_t best =
        std::min({size_bp, size_var, size_delta, size_raw});

    if (best == size_bp) {
      m.encoding = Encoding::kBitPack;
      m.width = static_cast<std::uint8_t>(width);
      m.base = vmin;
      payload.reserve(size_bp);
      std::uint64_t acc = 0;
      unsigned bits = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc |= (vals[i] - vmin) << bits;
        bits += width;
        while (bits >= 8) {
          payload.push_back(static_cast<std::byte>(acc & 0xff));
          acc >>= 8;
          bits -= 8;
        }
      }
      if (bits > 0) payload.push_back(static_cast<std::byte>(acc & 0xff));
    } else if (best == size_var) {
      m.encoding = Encoding::kVarint;
      payload.reserve(size_var);
      for (std::size_t i = 0; i < n; ++i) append_varint(payload, vals[i]);
    } else if (best == size_delta) {
      m.encoding = Encoding::kDeltaVarint;
      payload.reserve(size_delta);
      prev = 0;
      for (std::size_t i = 0; i < n; ++i) {
        append_varint(payload,
                      zigzag64(static_cast<std::int64_t>(vals[i] - prev)));
        prev = vals[i];
      }
    } else {
      m.encoding = Encoding::kRaw;
      payload.resize(size_raw);
      std::memcpy(payload.data(), vals.data(), size_raw);
    }
    m.byte_len = static_cast<std::uint32_t>(payload.size());
  }

  w.put<std::uint8_t>(wire::kRecordSegment);
  w.put<std::uint32_t>(h.count);
  for (const auto& m : h.cols) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(m.encoding));
    w.put<std::uint8_t>(m.width);
    w.put<std::uint64_t>(m.base);
    w.put<std::uint32_t>(m.byte_len);
  }
  for (const auto& payload : payloads) {
    w.put_raw(std::span<const std::byte>(payload));
  }
  if (zone_out != nullptr) *zone_out = zi;
}

SegmentHeader parse_segment_header(std::span<const std::byte> blob,
                                   const std::filesystem::path& path,
                                   std::size_t seg) {
  if (blob.size() < kSegmentHeaderBytes) {
    segment_error(path, seg, "truncated segment header");
  }
  if (std::to_integer<std::uint8_t>(blob[0]) != wire::kRecordSegment) {
    segment_error(path, seg, "bad segment record tag");
  }
  SegmentHeader h;
  const auto* p = reinterpret_cast<const unsigned char*>(blob.data()) + 1;
  std::memcpy(&h.count, p, 4);
  p += 4;
  for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
    auto& m = h.cols[c];
    const std::uint8_t enc = *p++;
    if (enc >= kNumEncodings) {
      column_error(path, seg, c, "unknown column encoding " +
                                     std::to_string(enc));
    }
    m.encoding = static_cast<Encoding>(enc);
    m.width = *p++;
    std::memcpy(&m.base, p, 8);
    p += 8;
    std::memcpy(&m.byte_len, p, 4);
    p += 4;
    // Analytic length checks for the fixed-size encodings: a mismatch
    // means the header and payload disagree (corruption) — fail here,
    // before any decode loop trusts the numbers.
    const auto n = static_cast<std::uint64_t>(h.count);
    switch (m.encoding) {
      case Encoding::kConst:
        if (m.byte_len != 0) {
          column_error(path, seg, c, "const column with payload");
        }
        break;
      case Encoding::kBitPack:
        if (m.width == 0 || m.width > kMaxBitPackWidth ||
            m.byte_len != (n * m.width + 7) / 8) {
          column_error(path, seg, c, "bitpack column length mismatch");
        }
        break;
      case Encoding::kRaw:
        if (m.byte_len != 8 * n) {
          column_error(path, seg, c, "raw column length mismatch");
        }
        break;
      case Encoding::kVarint:
      case Encoding::kDeltaVarint:
        break;
    }
  }
  return h;
}

namespace {

/// The shared tiled decode loop.  `dest(i0, cnt, n)` names the Event
/// run a tile decodes into; `done(i0, cnt, events)` runs after the
/// tile's columns have all been scattered, while the run is cache-hot.
template <typename Dest, typename Done>
DecodeResult decode_tiles(std::span<const std::byte> blob, ColumnSet cols,
                          int num_ranks, std::vector<std::uint64_t>& scratch,
                          const std::filesystem::path& path, std::size_t seg,
                          const Dest& dest, const Done& done) {
  DecodeResult res;
  res.header = parse_segment_header(blob, path, seg);
  const std::size_t n = res.header.count;
  res.block_len = kSegmentHeaderBytes + res.header.payload_bytes();

  ColumnSet eff = cols & kAllColumns;
  if ((eff & (1u << kColTEnd)) != 0) eff |= 1u << kColTStart;

  (void)scratch;  // kept for API stability; the fused decode needs none

  // Locate (and bounds-check) every column payload up front, so a
  // truncated block fails with the offending column's name whether or
  // not that column was selected.
  std::array<std::span<const std::byte>, wire::kNumColumnsV3> payload;
  std::array<VarintCursor, wire::kNumColumnsV3> cursor;
  std::array<std::size_t, wire::kNumColumnsV3> bp_fast{};
  std::uint64_t off = kSegmentHeaderBytes;
  for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
    const auto& m = res.header.cols[c];
    if (off + m.byte_len > blob.size()) {
      column_error(path, seg, c,
                   "truncated column payload (needs " +
                       std::to_string(off + m.byte_len) + " bytes, have " +
                       std::to_string(blob.size()) + ")");
    }
    payload[c] = blob.subspan(off, m.byte_len);
    off += m.byte_len;
    if ((eff & (1u << c)) == 0 || n == 0) continue;
    res.decoded_bytes += m.byte_len;
    res.decoded_cols |= 1u << c;
    switch (m.encoding) {
      case Encoding::kVarint:
      case Encoding::kDeltaVarint: {
        const auto* p =
            reinterpret_cast<const unsigned char*>(payload[c].data());
        cursor[c] = VarintCursor{p, p + payload[c].size(), 0};
        break;
      }
      case Encoding::kBitPack:
        // Leading rows whose unaligned 8-byte load stays in bounds.
        if (payload[c].size() >= 8) {
          bp_fast[c] = std::min<std::size_t>(
              n, (8 * (payload[c].size() - 8) + 7) / m.width + 1);
        }
        break;
      default:
        break;
    }
  }

  // Tiled decode: each ~kTileRows run of events takes all its columns
  // while hot, turning the column-at-a-time scatter into one streaming
  // pass over the segment.
  for (std::size_t i0 = 0; i0 < n; i0 += kTileRows) {
    const std::size_t cnt = std::min(kTileRows, n - i0);
    Event* e = dest(i0, cnt, n);
    for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
      if ((eff & (1u << c)) == 0) continue;
      decode_column_dyn(c, res.header.cols[c], payload[c], cursor[c],
                        bp_fast[c], i0, cnt, e, num_ranks, path, seg);
    }
    done(i0, cnt, e);
  }

  // A varint column must be consumed exactly by its n rows.
  for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
    if ((res.decoded_cols & (1u << c)) == 0) continue;
    const auto enc = res.header.cols[c].encoding;
    if ((enc == Encoding::kVarint || enc == Encoding::kDeltaVarint) &&
        cursor[c].p != cursor[c].end) {
      column_error(path, seg, c, "trailing bytes after varint column");
    }
  }
  return res;
}

}  // namespace

DecodeResult decode_segment(std::span<const std::byte> blob, ColumnSet cols,
                            int num_ranks, std::vector<Event>& out,
                            std::vector<std::uint64_t>& scratch,
                            const std::filesystem::path& path,
                            std::size_t seg) {
  const auto res = decode_tiles(
      blob, cols, num_ranks, scratch, path, seg,
      [&out](std::size_t i0, std::size_t, std::size_t n) {
        // Resize without clearing: every selected field is overwritten,
        // and a reused scratch vector of the right size skips a
        // multi-MB value-initialization per decode.  Unselected fields
        // are unspecified.
        if (i0 == 0) out.resize(n);
        return out.data() + i0;
      },
      [](std::size_t, std::size_t, const Event*) {});
  out.resize(res.header.count);  // covers the zero-tile (empty) case
  return res;
}

DecodeResult decode_segment_visit(
    std::span<const std::byte> blob, int num_ranks, std::size_t base_index,
    const std::function<void(std::size_t, const Event&)>& visit,
    std::vector<std::uint64_t>& scratch, const std::filesystem::path& path,
    std::size_t seg) {
  // One tile of events on the stack: a full-segment sweep never
  // materializes more than kTileRows rows, and each row is visited
  // straight out of L1.
  std::array<Event, kTileRows> buf;
  return decode_tiles(
      blob, kAllColumns, num_ranks, scratch, path, seg,
      [&buf](std::size_t, std::size_t, std::size_t) { return buf.data(); },
      [&](std::size_t i0, std::size_t cnt, const Event* e) {
        for (std::size_t k = 0; k < cnt; ++k) {
          visit(base_index + i0 + k, e[k]);
        }
      });
}

}  // namespace tdbg::trace::columnar
