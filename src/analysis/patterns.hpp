#pragma once

#include <string>
#include <vector>

#include "graph/action_graph.hpp"
#include "trace/trace.hpp"

/// \file patterns.hpp
/// Behavioral model checking against the trace — the Ariadne idea the
/// paper surveys in §5: "Ariadne ... is able to match a user-specified
/// model with the actual behavior captured in event traces."
///
/// A *model* is a sequence pattern over a rank's actions (the §4.4
/// action abstraction: maximal runs of one construct).  Token syntax:
///
///     kind[:construct][rep]
///
/// where `kind` is one of `enter`, `send`, `recv`, `coll`, `compute`,
/// `mark`, or `any`; `:construct` optionally pins the construct name;
/// and `rep` is `*` (zero or more actions), `+` (one or more), or `?`
/// (optional).  Example — the Strassen master's model:
///
///     enter:rank_body enter:master any* send:MatrSend+ any* recv:MatrRecv+ any*
///
/// Checking a model against every rank immediately shows which ranks
/// deviate — the Fig. 6 diagnosis ("process 7 is not behaving like
/// processes 1-6") as a query.

namespace tdbg::analysis {

/// One parsed model token.
struct PatternToken {
  trace::EventKind kind = trace::EventKind::kEnter;
  bool any_kind = false;
  std::string construct;  ///< empty = any construct
  enum class Rep : std::uint8_t { kOnce, kStar, kPlus, kOpt } rep = Rep::kOnce;
};

/// Parses a model string; throws `tdbg::Error` on syntax errors.
std::vector<PatternToken> parse_pattern(const std::string& pattern);

/// Result of checking one rank.
struct ModelResult {
  mpi::Rank rank = 0;
  bool matched = false;
  /// When unmatched: index of the first action the model could not
  /// consume (== number of actions when the model wanted more).
  std::size_t failed_at = 0;
  /// Human-readable mismatch description (empty when matched).
  std::string detail;
};

/// Checks the model against one rank's action sequence.
ModelResult check_model(const trace::Trace& trace,
                        const graph::ActionGraph& actions, mpi::Rank rank,
                        const std::vector<PatternToken>& pattern);

/// Checks every rank; convenience over `check_model`.  `actions` is
/// the cached action graph from the owning `analysis::Session`
/// (`Session::check_model()` is the public entry point).
std::vector<ModelResult> check_model_all(const trace::Trace& trace,
                                         const graph::ActionGraph& actions,
                                         const std::string& pattern);

}  // namespace tdbg::analysis
