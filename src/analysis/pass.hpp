#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/traffic.hpp"
#include "graph/comm_graph.hpp"
#include "trace/trace.hpp"

/// \file pass.hpp
/// The raw pass builders behind `analysis::Session` (DeWiz-style: the
/// analyses are composable modules over one shared event-graph
/// substrate, not independent full-scan subsystems).
///
/// The foundation is the **fused sweep**: one segment-parallel
/// `map_reduce` over the trace that simultaneously feeds
///
///   * message matching (per-channel send/receive records),
///   * communication supervision (the unmatched remainder),
///   * traffic accounting (every field the aggregator needs is
///     captured in the records, so no per-match `event()` lookups),
///   * race-candidate gathering (the send pool and wildcard receives),
///   * comm-graph node/edge extraction, and
///   * the per-rank program-order index,
///
/// where the pre-refactor code ran one full scan per consumer.  The
/// sweep is *monoid-shaped*: per-segment partials concatenate in
/// segment order, so results are bit-identical at any thread count
/// (the PR-7 contract), and a delta sweep over appended segments
/// extends an existing `SweepData` without rescanning the prefix —
/// the incremental-recompute path `Session::update()` rides on.
///
/// Only this file and `session.cpp` may compute matching or vector
/// clocks; `scripts/verify.sh` greps the rest of the source tree
/// clean.

namespace tdbg::analysis {

/// A send captured by the fused sweep — every field any downstream
/// pass (matching, traffic, races, comm graph) reads.
struct SweepSend {
  std::size_t index = 0;  ///< global display index
  std::uint64_t marker = 0;
  support::TimeNs t_start = 0;
  support::TimeNs t_end = 0;
  mpi::Rank rank = 0;  ///< source
  mpi::Rank peer = 0;  ///< destination
  mpi::Tag tag = 0;
  std::uint64_t bytes = 0;
};

/// A receive captured by the fused sweep.
struct SweepRecv {
  std::size_t index = 0;  ///< global display index
  mpi::ChannelSeq seq = 0;
  support::TimeNs t_start = 0;
  support::TimeNs t_end = 0;
  mpi::Rank rank = 0;  ///< receiver
  mpi::Rank peer = 0;  ///< actual source
  mpi::Tag tag = 0;
  std::uint64_t bytes = 0;
  bool wildcard = false;
};

/// One (source, dest) channel's records, each list in display order.
struct SweepChannel {
  std::vector<SweepSend> sends;
  std::vector<SweepRecv> recvs;
};

/// The fused-sweep artifact: everything one pass over the segments can
/// extract.  Monoid-shaped — `extend_sweep` appends delta segments
/// without touching the prefix.
struct SweepData {
  using ChannelKey = std::pair<mpi::Rank, mpi::Rank>;  ///< (src, dst)

  std::map<ChannelKey, SweepChannel> channels;

  /// Per rank: (marker, display index) for every event, sorted by
  /// marker — the store's program-order contract — ready to be turned
  /// into the shared `trace::RankIndex`.
  std::vector<std::vector<std::pair<std::uint64_t, std::size_t>>> rank_order;

  /// Events covered: the segment watermark.  Display indices in
  /// [0, num_events) have been swept.
  std::size_t num_events = 0;
};

/// The race detector's candidate pools, in display order (derived from
/// the sweep's channels, no trace rescan).
struct MessagePools {
  std::vector<SweepSend> sends;
  std::vector<SweepRecv> wildcard_recvs;
};

/// One fused pass over every segment of `trace`.
SweepData compute_sweep(const trace::Trace& trace);

/// Extends `sweep` over the delta `[sweep.num_events, trace.size())`
/// by sweeping only the segments that intersect it.  The caller has
/// verified the prefix is unchanged (the session's fingerprint check).
void extend_sweep(SweepData& sweep, const trace::Trace& trace);

/// Per-channel FIFO pairing over the sweep's channels (the
/// non-overtaking rule), identical in every byte to the pre-refactor
/// `Trace::match_report`.  Re-running it after `extend_sweep` is the
/// incremental match path: pairing revisits the channel records but
/// never the trace.
trace::MatchReport compute_match_report(const SweepData& sweep);

/// The shared per-rank program-order index.
std::shared_ptr<const trace::RankIndex> compute_rank_index(
    const SweepData& sweep);

/// Traffic accounting from the sweep records and the matching — no
/// `event()` lookups.  Byte-identical to the pre-refactor
/// `analyze_traffic` text output.
TrafficReport compute_traffic(const SweepData& sweep,
                              const trace::MatchReport& report, int num_ranks);

/// The race detector's candidate pools (sorted back into display
/// order from the per-channel lists).
MessagePools compute_message_pools(const SweepData& sweep);

/// Communication-graph construction from the sweep + matching + rank
/// index (node layout and arc list byte-identical to the pre-refactor
/// `CommGraph::from_trace`).
graph::CommGraph compute_comm_graph(const SweepData& sweep,
                                    const trace::MatchReport& report,
                                    const trace::RankIndex& index);

}  // namespace tdbg::analysis
