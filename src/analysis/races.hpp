#pragma once

#include <vector>

#include "analysis/pass.hpp"
#include "causality/causal_order.hpp"
#include "trace/trace.hpp"

/// \file races.hpp
/// Message-race detection on a recorded history (paper §4.4; the
/// approach follows Netzer et al. [15], whose *frontier race*
/// formulation the paper cites for its consistent-frontier machinery).
///
/// A wildcard (`ANY_SOURCE`) receive R that matched message m races
/// with another message m' to the same rank with a compatible tag when
/// m' *could have* matched R instead in some legal execution:
///
///  * send(m') does not causally depend on R's completion (otherwise
///    m' cannot exist until R is done), and
///  * m' was not already consumed by a receive that happens before R
///    (otherwise m' is gone in every legal execution reaching R), and
///  * m' is not an earlier message on the same channel as m (the
///    non-overtaking rule fixes that order).
///
/// A reported race means the recorded match order is not the only
/// possible one — exactly the runs where uncontrolled re-execution
/// may diverge and where the §4.2 replay control earns its keep.

namespace tdbg::analysis {

/// One racy wildcard receive.
struct MessageRace {
  std::size_t recv_index = 0;            ///< the wildcard receive (trace index)
  std::size_t matched_send = 0;          ///< the send it actually matched
  std::vector<std::size_t> candidates;   ///< sends that could have matched
};

/// Race report for a whole trace.
struct RaceReport {
  std::vector<MessageRace> races;

  [[nodiscard]] bool racy() const { return !races.empty(); }
};

/// Finds races among the trace's wildcard receives.  `pools` is the
/// fused sweep's candidate extract and `order` must be built over the
/// same trace; both come from the owning `analysis::Session`
/// (`Session::races()` is the public entry point).
RaceReport find_races(const MessagePools& pools,
                      const causality::CausalOrder& order);

}  // namespace tdbg::analysis
