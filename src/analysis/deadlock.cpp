#include "analysis/deadlock.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"

namespace tdbg::analysis {

namespace {

/// Finds one cycle in the wait-for graph restricted to blocked ranks,
/// following each blocked rank's *specific-source* edges (wildcard
/// receives wait on everyone, so any blocked candidate continues the
/// walk).  Returns the cycle in wait-for order, or empty.
std::vector<mpi::Rank> find_cycle(const std::vector<mpi::WaitInfo>& waits) {
  const auto n = waits.size();
  const auto blocked = [&](mpi::Rank r) {
    const auto k = waits[static_cast<std::size_t>(r)].kind;
    return k == mpi::WaitKind::kRecv || k == mpi::WaitKind::kSsend;
  };
  // Walk the wait-for graph from each blocked rank; a revisit of a
  // rank on the current path is a cycle.
  for (std::size_t start = 0; start < n; ++start) {
    if (!blocked(static_cast<mpi::Rank>(start))) continue;
    std::vector<mpi::Rank> path;
    std::vector<int> pos_on_path(n, -1);
    mpi::Rank cur = static_cast<mpi::Rank>(start);
    while (blocked(cur)) {
      if (pos_on_path[static_cast<std::size_t>(cur)] >= 0) {
        const auto from =
            static_cast<std::size_t>(pos_on_path[static_cast<std::size_t>(cur)]);
        return {path.begin() + static_cast<std::ptrdiff_t>(from), path.end()};
      }
      pos_on_path[static_cast<std::size_t>(cur)] =
          static_cast<int>(path.size());
      path.push_back(cur);
      const auto& w = waits[static_cast<std::size_t>(cur)];
      if (w.peer != mpi::kAnySource) {
        cur = w.peer;
        continue;
      }
      // Wildcard: follow any blocked candidate (deterministically the
      // lowest-numbered one not already explored from here).
      mpi::Rank next = -1;
      for (std::size_t r = 0; r < n; ++r) {
        if (static_cast<mpi::Rank>(r) != cur &&
            blocked(static_cast<mpi::Rank>(r))) {
          next = static_cast<mpi::Rank>(r);
          break;
        }
      }
      if (next < 0) break;
      cur = next;
    }
  }
  return {};
}

}  // namespace

DeadlockReport explain_deadlock(const std::vector<mpi::WaitInfo>& waits) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global().histogram(
                             "analysis.deadlock_ns", obs::Unit::kNanoseconds),
                         /*rank=*/-1);
  DeadlockReport report;

  for (const auto& w : waits) {
    if (w.kind != mpi::WaitKind::kRecv && w.kind != mpi::WaitKind::kSsend) {
      continue;
    }
    if (w.peer == mpi::kAnySource) {
      for (const auto& other : waits) {
        if (other.rank == w.rank) continue;
        report.edges.push_back(WaitEdge{w.rank, other.rank, w.kind, w.tag});
      }
    } else {
      report.edges.push_back(WaitEdge{w.rank, w.peer, w.kind, w.tag});
      if (waits[static_cast<std::size_t>(w.peer)].kind ==
          mpi::WaitKind::kFinished) {
        report.starved.push_back(w.rank);
      }
    }
  }
  report.cycle = find_cycle(waits);
  report.deadlocked = !report.cycle.empty() || !report.starved.empty();

  std::ostringstream os;
  if (!report.cycle.empty()) {
    os << "circular wait: ";
    for (std::size_t i = 0; i < report.cycle.size(); ++i) {
      if (i != 0) os << " -> ";
      os << "rank " << report.cycle[i];
    }
    os << " -> rank " << report.cycle.front();
  }
  if (!report.starved.empty()) {
    if (!report.cycle.empty()) os << "; ";
    os << "waiting on finished ranks:";
    for (const auto r : report.starved) os << " " << r;
  }
  if (!report.deadlocked) os << "no circular or starved waits";
  report.description = os.str();
  return report;
}

}  // namespace tdbg::analysis
