#pragma once

#include <vector>

#include "causality/causal_order.hpp"
#include "trace/trace.hpp"

/// \file intertwined.hpp
/// Intertwined-message detection (paper §4.4: "At this point,
/// information about intertwined messages [13, p.31] is also available
/// to the user").
///
/// Two matched messages *intertwine* when their send order and receive
/// order disagree: send(m1) happens before send(m2), yet recv(m2)
/// happens before recv(m1).  The MPI non-overtaking rule makes this
/// impossible on a single (source, dest) channel with one matching
/// receive pattern, so an intertwining always involves different
/// channels or tag selection — it is where the visual intuition "the
/// earlier message arrives earlier" breaks, and a common source of
/// confusion the debugger can point out.

namespace tdbg::analysis {

/// One intertwined pair (indices into the trace's events).
struct IntertwinedPair {
  std::size_t first_send = 0;   ///< m1's send (causally earlier send)
  std::size_t first_recv = 0;   ///< m1's receive (causally later receive)
  std::size_t second_send = 0;  ///< m2's send
  std::size_t second_recv = 0;  ///< m2's receive
};

/// Finds all intertwined message pairs.  Quadratic in the number of
/// messages; fine for debugging-session-sized traces.
std::vector<IntertwinedPair> find_intertwined(
    const trace::Trace& trace, const causality::CausalOrder& order);

}  // namespace tdbg::analysis
