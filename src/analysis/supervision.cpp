#include "analysis/supervision.hpp"

#include "support/error.hpp"

namespace tdbg::analysis {

LiveSupervisor::LiveSupervisor(int num_ranks) {
  TDBG_CHECK(num_ranks > 0, "supervisor needs at least one rank");
}

void LiveSupervisor::on_call_end(const mpi::CallInfo& info,
                                 const mpi::Status* status) {
  switch (info.kind) {
    case mpi::CallKind::kSend:
    case mpi::CallKind::kSsend: {
      std::lock_guard lk(mu_);
      auto& ch = channels_[{info.rank, info.peer}];
      const auto seq = ch.next_send_seq++;
      ch.pending.emplace(
          seq, OutstandingSend{info.rank, info.peer, info.tag, seq,
                               info.bytes});
      ++sends_;
      break;
    }
    case mpi::CallKind::kRecv: {
      TDBG_CHECK(status != nullptr, "recv completion without status");
      std::lock_guard lk(mu_);
      ++recvs_;
      auto it = channels_.find({status->source, info.rank});
      if (it == channels_.end() ||
          it->second.pending.erase(status->channel_seq) == 0) {
        ++orphans_;
      }
      break;
    }
    default:
      break;
  }
}

std::vector<OutstandingSend> LiveSupervisor::outstanding() const {
  std::lock_guard lk(mu_);
  std::vector<OutstandingSend> out;
  for (const auto& [key, ch] : channels_) {
    for (const auto& [seq, send] : ch.pending) out.push_back(send);
  }
  return out;
}

std::size_t LiveSupervisor::orphan_recvs() const {
  std::lock_guard lk(mu_);
  return orphans_;
}

std::uint64_t LiveSupervisor::total_sends() const {
  std::lock_guard lk(mu_);
  return sends_;
}

std::uint64_t LiveSupervisor::total_recvs() const {
  std::lock_guard lk(mu_);
  return recvs_;
}

}  // namespace tdbg::analysis
