#include "analysis/critical_path.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tdbg::analysis {

CriticalPath critical_path(const trace::Trace& trace,
                           const trace::MatchReport& matches,
                           const trace::RankIndex& index) {
  obs::ScopedTimer timer(
      obs::MetricsRegistry::global().histogram("analysis.critical_path_ns",
                                               obs::Unit::kNanoseconds),
      /*rank=*/-1);
  CriticalPath out;
  out.per_rank.assign(static_cast<std::size_t>(trace.num_ranks()), 0);
  if (trace.empty()) return out;

  std::unordered_map<std::size_t, std::size_t> send_of_recv;
  for (const auto& m : matches.matches) {
    send_of_recv.emplace(m.recv_index, m.send_index);
  }

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<support::TimeNs> best(trace.size(), 0);  // path cost ending here
  std::vector<support::TimeNs> eff(trace.size(), 0);   // effective durations
  std::vector<std::size_t> pred(trace.size(), kNone);

  // Per-rank program-order sequences come from the session's shared
  // rank index — random-accessed by the worklist below.
  const auto& seqs = index.seq;

  // Weights are profiler-style *self times*: an event's interval minus
  // the intervals of events directly nested inside it on the same rank
  // (a compute scope around blocking receives must not count their
  // waits as its own work), and a matched receive's time spent blocked
  // before its sender finished counts as edge latency, not rank work.
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    struct Open {
      std::size_t index;
      support::TimeNs t_end;
    };
    std::vector<Open> stack;  // open enclosing intervals
    trace.for_each_rank_event(r, [&](std::size_t e, const trace::Event& ev) {
      const auto raw = std::max<support::TimeNs>(0, ev.t_end - ev.t_start);
      eff[e] = raw;
      while (!stack.empty() && stack.back().t_end <= ev.t_start) {
        stack.pop_back();
      }
      if (!stack.empty() && ev.t_end <= stack.back().t_end) {
        eff[stack.back().index] = std::max<support::TimeNs>(
            0, eff[stack.back().index] - raw);  // parent loses child time
        stack.push_back(Open{e, ev.t_end});
      } else if (stack.empty()) {
        stack.push_back(Open{e, ev.t_end});
      }
    });
  }
  for (const auto& m : matches.matches) {
    const auto recv = trace.event(m.recv_index);
    const auto send = trace.event(m.send_index);
    eff[m.recv_index] = std::max<support::TimeNs>(
        0, recv.t_end - std::max(recv.t_start, send.t_end));
  }

  // Process in dependency order: per-rank program order, with receives
  // gated on their matched send (same worklist scheme as CausalOrder).
  std::vector<std::size_t> next(static_cast<std::size_t>(trace.num_ranks()), 0);
  std::vector<bool> done(trace.size(), false);
  std::size_t remaining = trace.size();
  bool progressed = true;
  while (remaining > 0) {
    TDBG_CHECK(progressed, "cyclic message dependency in trace");
    progressed = false;
    for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
      const auto& seq = seqs[static_cast<std::size_t>(r)];
      auto& pos = next[static_cast<std::size_t>(r)];
      while (pos < seq.size()) {
        const std::size_t e = seq[pos];
        const auto dep = send_of_recv.find(e);
        if (dep != send_of_recv.end() && !done[dep->second]) break;

        support::TimeNs incoming = 0;
        std::size_t from = kNone;
        if (pos > 0) {
          incoming = best[seq[pos - 1]];
          from = seq[pos - 1];
        }
        if (dep != send_of_recv.end() && best[dep->second] > incoming) {
          incoming = best[dep->second];
          from = dep->second;
        }
        best[e] = incoming + eff[e];
        pred[e] = from;
        done[e] = true;
        --remaining;
        ++pos;
        progressed = true;
      }
    }
  }

  // Walk back from the costliest endpoint.
  std::size_t tail = 0;
  for (std::size_t e = 1; e < trace.size(); ++e) {
    if (best[e] > best[tail]) tail = e;
  }
  out.total = best[tail];
  for (std::size_t e = tail; e != kNone; e = pred[e]) {
    out.events.push_back(e);
  }
  std::reverse(out.events.begin(), out.events.end());

  mpi::Rank prev_rank = -1;
  out.durations.reserve(out.events.size());
  for (const auto e : out.events) {
    const auto& ev = trace.event(e);
    out.durations.push_back(eff[e]);
    out.per_rank[static_cast<std::size_t>(ev.rank)] += eff[e];
    if (prev_rank >= 0 && ev.rank != prev_rank) ++out.rank_switches;
    prev_rank = ev.rank;
  }
  return out;
}

std::string CriticalPath::to_string(const trace::Trace& trace,
                                    std::size_t max_rows) const {
  std::ostringstream os;
  os << "critical path: " << events.size() << " events, "
     << support::human_duration(total) << ", " << rank_switches
     << " rank switch(es)\n";
  os << "per-rank share:\n";
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (per_rank[r] == 0) continue;
    os << "  rank " << r << ": " << support::human_duration(per_rank[r]);
    if (total > 0) {
      os << " (" << (100 * per_rank[r] / total) << "%)";
    }
    os << "\n";
  }
  // The heaviest events on the path, by effective duration.
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return durations[a] > durations[b];
  });
  os << "heaviest path events:\n";
  for (std::size_t i = 0; i < order.size() && i < max_rows; ++i) {
    if (durations[order[i]] == 0) break;
    const auto& e = trace.event(events[order[i]]);
    os << "  rank " << e.rank << "  "
       << trace::event_kind_name(e.kind) << "  "
       << (e.construct == trace::kNoConstruct
               ? std::string("?")
               : trace.constructs().info(e.construct).name)
       << "  " << support::human_duration(durations[order[i]]) << "\n";
  }
  return os.str();
}

}  // namespace tdbg::analysis
