#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/intertwined.hpp"
#include "analysis/pass.hpp"
#include "analysis/patterns.hpp"
#include "analysis/races.hpp"
#include "analysis/traffic.hpp"
#include "causality/causal_order.hpp"
#include "graph/action_graph.hpp"
#include "graph/call_graph.hpp"
#include "graph/comm_graph.hpp"
#include "graph/trace_graph.hpp"
#include "trace/trace.hpp"

/// \file session.hpp
/// `analysis::Session` — the shared-artifact pass manager every
/// analysis consumer goes through (the DeWiz / MAD idea: one event-
/// graph substrate, many composable analysis modules).
///
/// A session owns one `trace::Trace` and a cache of lazily-computed,
/// memoized **artifacts** over it — the fused sweep, the match report,
/// the per-rank index, vector clocks, traffic, races, the graphs —
/// each computed at most once per trace state and handed out by
/// reference.  The debugger holds one session per trace; the CLI tools
/// and the HTML view construct one and pull what they need.
///
/// **Invalidation / incremental contract.**  `update(trace)` moves the
/// session to a new trace state.  When the new trace is a prefix-
/// stable extension of the old one (same events up to the old
/// watermark — verified by a size check plus event fingerprints at the
/// prefix edges), the monoid-shaped artifacts recompute incrementally:
/// the fused sweep extends over the delta segments only, and matching,
/// traffic, the rank index, and the comm graph rebuild from the
/// sweep's records without rescanning the trace.  Otherwise every
/// artifact is dropped and rebuilt from scratch on next use.  Either
/// way, results are byte-identical to a from-scratch session — the
/// incremental path is a pure optimization.
///
/// References returned by the getters stay valid until the next
/// `update()`.  Getters are thread-safe (one recursive mutex; passes
/// call their dependency passes re-entrantly).

namespace tdbg::analysis {

/// State of one pass in the artifact cache (the `passes` command).
struct PassInfo {
  std::string name;
  std::string deps;        ///< declared dependencies (display only)
  bool incremental = false;  ///< monoid-shaped: recomputes from deltas
  bool cached = false;       ///< artifact currently materialized
  std::uint64_t computes = 0;  ///< times built (from scratch or delta)
  std::uint64_t reuses = 0;    ///< cache hits
  support::TimeNs last_ns = 0;  ///< duration of the last build
  std::size_t watermark = 0;    ///< events covered by the cached value
};

/// Shared-artifact analysis pipeline over one trace.
class Session {
 public:
  explicit Session(trace::Trace trace);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The trace this session analyzes.
  [[nodiscard]] const trace::Trace& trace() const { return trace_; }

  /// Moves the session to a new trace state (live recording growth,
  /// merge, or an unrelated trace).  Prefix-stable extensions take the
  /// incremental path; anything else invalidates every artifact.
  void update(trace::Trace trace);

  /// Events covered by the current artifacts (== trace().size()).
  [[nodiscard]] std::size_t watermark() const;

  // --- Artifacts (computed on first use, then cached) -----------------

  /// The fused single-sweep artifact feeding matching, traffic,
  /// supervision, races, and the comm graph.
  const SweepData& sweep();

  /// Send/receive matching + unmatched remainder (paper §4.4).
  const trace::MatchReport& match_report();

  /// The shared per-rank program-order index.
  const trace::RankIndex& rank_index();

  /// Shared handle to the rank index (what `CausalOrder` retains).
  std::shared_ptr<const trace::RankIndex> rank_index_ptr();

  /// Happens-before / vector clocks.
  const causality::CausalOrder& causal_order();

  /// Message-traffic statistics and irregularities.
  const TrafficReport& traffic();

  /// Wildcard-receive races.
  const RaceReport& races();

  /// The communication graph (§3.2 / Fig. 4).
  const graph::CommGraph& comm_graph();

  /// The per-rank action abstraction (§4.4).
  const graph::ActionGraph& action_graph();

  /// The merged trace graph (§4.3); memoized per merge limit.
  const graph::TraceGraph& trace_graph(std::size_t merge_limit = 16);

  /// Call-graph projection (§3.2 / Fig. 9); memoized per rank key.
  const graph::CallGraph& call_graph(
      std::optional<mpi::Rank> rank = std::nullopt);

  /// Critical path through the run.
  const CriticalPath& critical_path();

  /// Intertwined message pairs (§4.4).
  const std::vector<IntertwinedPair>& intertwined();

  /// Checks a behavioral model against every rank (not memoized — the
  /// pattern varies; rides on the cached action graph).
  std::vector<ModelResult> check_model(const std::string& pattern);

  // --- Observability ---------------------------------------------------

  /// Cache state of every pass, in pipeline order.
  [[nodiscard]] std::vector<PassInfo> pass_states() const;

  /// Human-readable cache-state table (the `passes` command).
  [[nodiscard]] std::string describe() const;

 private:
  template <typename T>
  struct Artifact {
    std::optional<T> value;
    std::uint64_t computes = 0;
    std::uint64_t reuses = 0;
    support::TimeNs last_ns = 0;
    std::size_t watermark = 0;
  };

  /// Memoization core: returns the cached value or runs `build` under
  /// a telemetry span, bumping the session.artifacts.* counters.
  template <typename T, typename Build>
  const T& materialize(Artifact<T>& slot, const char* span_name,
                       Build&& build);

  /// Drops an artifact (if materialized), counting the invalidation.
  template <typename T>
  void invalidate(Artifact<T>& slot);

  /// A compact identity of `trace_`'s event at `i`, used to verify
  /// prefix stability across `update()`.
  struct Fingerprint {
    mpi::Rank rank = -1;
    std::uint64_t marker = 0;
    support::TimeNs t_start = 0;
    friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
  };
  [[nodiscard]] Fingerprint fingerprint(const trace::Trace& t,
                                        std::size_t i) const;

  void fill_info(std::vector<PassInfo>& out, const char* name,
                 const char* deps, bool incremental, std::uint64_t computes,
                 std::uint64_t reuses, support::TimeNs last_ns,
                 std::size_t watermark, bool cached) const;

  mutable std::recursive_mutex mu_;
  trace::Trace trace_;

  Artifact<SweepData> sweep_;
  Artifact<trace::MatchReport> match_;
  Artifact<std::shared_ptr<const trace::RankIndex>> rank_index_;
  Artifact<causality::CausalOrder> order_;
  Artifact<TrafficReport> traffic_;
  Artifact<RaceReport> races_;
  Artifact<graph::CommGraph> comm_graph_;
  Artifact<graph::ActionGraph> action_graph_;
  Artifact<CriticalPath> critical_path_;
  Artifact<std::vector<IntertwinedPair>> intertwined_;
  std::map<std::size_t, Artifact<graph::TraceGraph>> trace_graphs_;
  std::map<int, Artifact<graph::CallGraph>> call_graphs_;
};

}  // namespace tdbg::analysis
