#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "mpi/hooks.hpp"

/// \file supervision.hpp
/// Live communication supervision (paper §4.4): "The debugger
/// maintains a list of unmatched sends and receives.  The list is
/// updated as execution progresses.  ...  As soon as the communication
/// graph has been built, the user is informed about the unmatched
/// send/receives."
///
/// `LiveSupervisor` is a profiling hook: install it (alongside the
/// session) and it mirrors the runtime's FIFO channel discipline to
/// keep a current list of sends that no receive has consumed yet —
/// during the run, not post-mortem.

namespace tdbg::analysis {

/// A send that has not (yet) been received.
struct OutstandingSend {
  mpi::Rank src = 0;
  mpi::Rank dst = 0;
  mpi::Tag tag = mpi::kAnyTag;
  mpi::ChannelSeq seq = 0;
  std::size_t bytes = 0;
};

/// Online unmatched send/receive tracker.
class LiveSupervisor : public mpi::ProfilingHooks {
 public:
  explicit LiveSupervisor(int num_ranks);

  void on_call_end(const mpi::CallInfo& info,
                   const mpi::Status* status) override;

  /// Sends currently outstanding (sent, not received), in channel
  /// order.
  [[nodiscard]] std::vector<OutstandingSend> outstanding() const;

  /// Receives observed with no recorded send (possible only when the
  /// sender's instrumentation was off).
  [[nodiscard]] std::size_t orphan_recvs() const;

  /// Totals.
  [[nodiscard]] std::uint64_t total_sends() const;
  [[nodiscard]] std::uint64_t total_recvs() const;

 private:
  struct Channel {
    mpi::ChannelSeq next_send_seq = 0;
    std::map<mpi::ChannelSeq, OutstandingSend> pending;
  };

  mutable std::mutex mu_;
  std::map<std::pair<mpi::Rank, mpi::Rank>, Channel> channels_;
  std::uint64_t sends_ = 0;
  std::uint64_t recvs_ = 0;
  std::size_t orphans_ = 0;
};

}  // namespace tdbg::analysis
