#pragma once

#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

/// \file traffic.hpp
/// Message-traffic statistics and irregularity report (paper §6:
/// the graph abstraction "provides a good basis for execution analysis
/// for locating circular dependencies of messages and locating the
/// missed messages and irregularities in message traffic").
///
/// The irregularity detector encodes the reasoning the paper walks
/// through for Figure 6: "processes 1-6 each receive 2 messages and
/// process 7 only receives 1" — a rank whose receive count deviates
/// from its peer group is flagged.

namespace tdbg::analysis {

/// Per-channel statistics.
struct ChannelStats {
  mpi::Rank src = 0;
  mpi::Rank dst = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  support::TimeNs min_latency = 0;  ///< recv completion - send start
  support::TimeNs max_latency = 0;
  double mean_latency = 0.0;
};

/// Per-rank totals.
struct RankTraffic {
  mpi::Rank rank = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
};

/// A detected irregularity.
struct Irregularity {
  enum class Kind : std::uint8_t {
    kUnmatchedSend,   ///< the "missed message" of Fig. 6
    kOrphanRecv,      ///< receive with no send record
    kRecvCountOutlier ///< rank receives unlike its peers (Fig. 6 reasoning)
  };
  Kind kind = Kind::kUnmatchedSend;
  mpi::Rank rank = -1;          ///< rank concerned
  std::size_t event = 0;        ///< trace index when applicable
  std::string description;
};

/// Full traffic report.
struct TrafficReport {
  std::vector<ChannelStats> channels;     ///< active channels only
  std::vector<RankTraffic> ranks;         ///< all ranks
  std::vector<Irregularity> irregularities;

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string to_string() const;
};

// The report is produced by `analysis::compute_traffic` (pass.hpp)
// from the fused sweep's records; `analysis::Session::traffic()` is
// the public entry point.

}  // namespace tdbg::analysis
