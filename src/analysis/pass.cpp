#include "analysis/pass.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"

namespace tdbg::analysis {

namespace {

/// Matches aggregated per traffic task.  A fixed chunk size (never a
/// function of thread count) plus a chunk-ordered merge keeps the
/// report bit-identical at any parallelism; latency sums stay in exact
/// integer arithmetic until the final mean division.
constexpr std::size_t kMatchChunk = 1u << 14;

/// One segment's records.  Channels live in a flat nranks² slab
/// indexed (src * nranks + dst) — the sweep touches a channel slot
/// per message event, and an ordered map's node allocation + key
/// comparisons there is the sweep's single biggest per-event cost.
/// Row-major iteration of the slab reproduces ChannelKey order
/// exactly, so the fold is order-identical to the old map walk.
/// Out-of-range ranks (hostile or corrupt trace files) fall back to
/// the `overflow` map rather than faulting.
struct SweepPartial {
  int num_ranks = 0;
  std::vector<SweepChannel> flat;
  std::map<SweepData::ChannelKey, SweepChannel> overflow;
  std::vector<std::vector<std::pair<std::uint64_t, std::size_t>>> rank_order;
};

/// Appends one segment's records into `part`.  `min_index` skips the
/// already-swept prefix on the incremental path.
void sweep_segment(const trace::Trace& trace, std::size_t seg,
                   std::size_t min_index, SweepPartial& part) {
  const int nr = trace.num_ranks();
  const auto nru = static_cast<std::size_t>(nr);
  part.num_ranks = nr;
  part.flat.resize(nru * nru);
  part.rank_order.resize(nru);
  const auto channel = [&](mpi::Rank src, mpi::Rank dst) -> SweepChannel& {
    if (src >= 0 && src < nr && dst >= 0 && dst < nr) {
      return part.flat[static_cast<std::size_t>(src) * nru +
                       static_cast<std::size_t>(dst)];
    }
    return part.overflow[SweepData::ChannelKey(src, dst)];
  };
  // Column pushdown: the sweep never reads `construct`, and a segment
  // whose zone map shows no message events contributes only to the
  // rank-order index — rank + marker are the only columns a columnar
  // backend then has to decode.
  const std::uint32_t msg_mask =
      (1u << static_cast<unsigned>(trace::EventKind::kSend)) |
      (1u << static_cast<unsigned>(trace::EventKind::kRecv));
  if (const auto zones = trace.segment_zones(seg);
      zones && (zones->kind_mask & msg_mask) == 0) {
    trace.for_each_in_segment_cols(
        seg, trace::kColRank | trace::kColMarker,
        [&](std::size_t i, const trace::Event& e) {
          if (i < min_index) return;
          part.rank_order[static_cast<std::size_t>(e.rank)].emplace_back(
              e.marker, i);
        });
    return;
  }
  trace.for_each_in_segment_cols(
      seg, trace::kAllEventColumns & ~trace::kColConstruct,
      [&](std::size_t i, const trace::Event& e) {
        if (i < min_index) return;
        part.rank_order[static_cast<std::size_t>(e.rank)].emplace_back(
            e.marker, i);
        if (e.kind == trace::EventKind::kSend) {
          channel(e.rank, e.peer).sends.push_back(
              SweepSend{i, e.marker, e.t_start, e.t_end, e.rank, e.peer, e.tag,
                        e.bytes});
        } else if (e.kind == trace::EventKind::kRecv) {
          channel(e.peer, e.rank).recvs.push_back(
              SweepRecv{i, e.channel_seq, e.t_start, e.t_end, e.rank, e.peer,
                        e.tag, e.bytes, e.wildcard});
        }
      });
}

void fold_partial(SweepData& acc, SweepPartial&& part) {
  const auto append = [&acc](SweepData::ChannelKey key, SweepChannel& ch) {
    if (ch.sends.empty() && ch.recvs.empty()) return;
    auto& dst = acc.channels[key];
    dst.sends.insert(dst.sends.end(), ch.sends.begin(), ch.sends.end());
    dst.recvs.insert(dst.recvs.end(), ch.recvs.begin(), ch.recvs.end());
  };
  const auto nru = static_cast<std::size_t>(part.num_ranks);
  for (std::size_t src = 0; src < nru; ++src) {
    for (std::size_t dst = 0; dst < nru; ++dst) {
      append(SweepData::ChannelKey(static_cast<mpi::Rank>(src),
                                   static_cast<mpi::Rank>(dst)),
             part.flat[src * nru + dst]);
    }
  }
  for (auto& [key, ch] : part.overflow) append(key, ch);
  if (acc.rank_order.size() < part.rank_order.size()) {
    acc.rank_order.resize(part.rank_order.size());
  }
  for (std::size_t r = 0; r < part.rank_order.size(); ++r) {
    acc.rank_order[r].insert(acc.rank_order[r].end(),
                             part.rank_order[r].begin(),
                             part.rank_order[r].end());
  }
}

/// Restores per-rank program order over the unsorted tail of each rank
/// list (everything past `prefix_len[r]`): sort by (marker, display
/// index), which reproduces the store's stable by-marker ordering
/// exactly, then merge with the already-sorted prefix.  Rank lists are
/// independent, so the tasks never conflict.
void sort_rank_order(SweepData& sweep,
                     const std::vector<std::size_t>& prefix_len) {
  exec::Executor::global().parallel_for(
      sweep.rank_order.size(), "session.rank_index", [&](std::size_t r) {
        auto& order = sweep.rank_order[r];
        const auto mid =
            order.begin() + static_cast<std::ptrdiff_t>(
                                r < prefix_len.size() ? prefix_len[r] : 0);
        // A rank's markers are monotone in display order for every
        // trace the runtime writes (one thread per rank, timestamps
        // taken in program order), so the tail collected in segment
        // order is nearly always sorted already — check before paying
        // for the sort that covers reordered hand-built files.
        if (!std::is_sorted(mid, order.end())) std::sort(mid, order.end());
        // Both halves are now sorted, so the whole list is sorted iff
        // the boundary pair is ordered — an O(1) check that keeps the
        // incremental path from paying a full-list scan.
        if (mid != order.begin() && mid != order.end() &&
            *mid < *(mid - 1)) {
          std::inplace_merge(order.begin(), mid, order.end());
        }
      });
}

/// The shared gather core: sweeps every segment whose display range
/// intersects `[min_index, trace.size())` in parallel and folds the
/// partials in segment-index order, so the result is bit-identical at
/// any thread count and the delta path reuses the full-path code.
void gather(SweepData& sweep, const trace::Trace& trace,
            std::size_t min_index) {
  const std::size_t nseg = trace.segment_count();
  std::vector<SweepPartial> partials(nseg);
  trace.parallel_for_each_segment("session.sweep", [&](std::size_t seg) {
    const auto [lo, hi] = trace.segment_range(seg);
    if (hi <= min_index) return;  // fully inside the swept prefix
    (void)lo;
    sweep_segment(trace, seg, min_index, partials[seg]);
  });
  std::vector<std::size_t> prefix_len(sweep.rank_order.size());
  for (std::size_t r = 0; r < sweep.rank_order.size(); ++r) {
    prefix_len[r] = sweep.rank_order[r].size();
  }
  for (std::size_t seg = 0; seg < nseg; ++seg) {
    fold_partial(sweep, std::move(partials[seg]));
  }
  if (sweep.rank_order.size() <
      static_cast<std::size_t>(trace.num_ranks())) {
    sweep.rank_order.resize(static_cast<std::size_t>(trace.num_ranks()));
  }
  prefix_len.resize(sweep.rank_order.size(), 0);
  sort_rank_order(sweep, prefix_len);
  sweep.num_events = trace.size();
}

}  // namespace

SweepData compute_sweep(const trace::Trace& trace) {
  SweepData sweep;
  gather(sweep, trace, /*min_index=*/0);
  return sweep;
}

void extend_sweep(SweepData& sweep, const trace::Trace& trace) {
  TDBG_CHECK(trace.size() >= sweep.num_events,
             "extend_sweep needs a grown trace");
  if (trace.size() == sweep.num_events) return;
  gather(sweep, trace, /*min_index=*/sweep.num_events);
}

trace::MatchReport compute_match_report(const SweepData& sweep) {
  // Pairing, one task per channel.  Sends take FIFO sequence numbers
  // in the sender's program order — (marker, t_start), all sends of a
  // channel share one rank; receives carry their sequence numbers
  // explicitly.  Channels are independent, so each task works on its
  // own slot and the merge below just walks slots in key order.
  std::vector<const std::pair<const SweepData::ChannelKey, SweepChannel>*>
      flat;
  flat.reserve(sweep.channels.size());
  for (const auto& entry : sweep.channels) flat.push_back(&entry);

  struct ChannelResult {
    std::vector<trace::MessageMatch> matches;  ///< recv display order
    std::vector<std::size_t> unmatched_sends;
    std::vector<std::size_t> unmatched_recvs;
  };
  std::vector<ChannelResult> per_channel(flat.size());
  exec::Executor::global().parallel_for(
      flat.size(), "session.match.pair", [&](std::size_t c) {
        auto sends = flat[c]->second.sends;  // copy: sort locally
        const auto& recvs = flat[c]->second.recvs;
        auto& out = per_channel[c];
        std::stable_sort(sends.begin(), sends.end(),
                         [](const SweepSend& a, const SweepSend& b) {
                           if (a.marker != b.marker) return a.marker < b.marker;
                           return a.t_start < b.t_start;
                         });
        std::vector<bool> used(sends.size(), false);
        for (const SweepRecv& rv : recvs) {
          if (rv.seq >= sends.size() || used[rv.seq]) {
            out.unmatched_recvs.push_back(rv.index);
            continue;
          }
          used[rv.seq] = true;
          out.matches.push_back(
              trace::MessageMatch{sends[rv.seq].index, rv.index});
        }
        for (std::size_t s = 0; s < sends.size(); ++s) {
          if (!used[s]) out.unmatched_sends.push_back(sends[s].index);
        }
      });

  // Canonicalize: matches and orphan receives in global recv display
  // order, unmatched sends sorted by index — exactly the serial
  // algorithm's output.
  trace::MatchReport report;
  for (const auto& cr : per_channel) {
    report.matches.insert(report.matches.end(), cr.matches.begin(),
                          cr.matches.end());
    report.unmatched_sends.insert(report.unmatched_sends.end(),
                                  cr.unmatched_sends.begin(),
                                  cr.unmatched_sends.end());
    report.unmatched_recvs.insert(report.unmatched_recvs.end(),
                                  cr.unmatched_recvs.begin(),
                                  cr.unmatched_recvs.end());
  }
  std::sort(report.matches.begin(), report.matches.end(),
            [](const trace::MessageMatch& a, const trace::MessageMatch& b) {
              return a.recv_index < b.recv_index;
            });
  std::sort(report.unmatched_sends.begin(), report.unmatched_sends.end());
  std::sort(report.unmatched_recvs.begin(), report.unmatched_recvs.end());
  return report;
}

std::shared_ptr<const trace::RankIndex> compute_rank_index(
    const SweepData& sweep) {
  auto index = std::make_shared<trace::RankIndex>();
  index->seq.resize(sweep.rank_order.size());
  index->position.assign(sweep.num_events, 0);
  exec::Executor::global().parallel_for(
      sweep.rank_order.size(), "session.rank_index.build",
      [&](std::size_t r) {
        auto& seq = index->seq[r];
        seq.reserve(sweep.rank_order[r].size());
        for (const auto& [marker, i] : sweep.rank_order[r]) {
          index->position[i] = seq.size();
          seq.push_back(i);
        }
      });
  return index;
}

namespace {

struct ChannelAgg {
  mpi::Rank src = 0;
  mpi::Rank dst = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  support::TimeNs min_latency = 0;
  support::TimeNs max_latency = 0;
  std::int64_t latency_sum = 0;
};

struct RankAgg {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
};

struct TrafficPartial {
  std::map<std::pair<mpi::Rank, mpi::Rank>, ChannelAgg> channels;
  std::vector<RankAgg> ranks;
};

/// Display-index lookup tables over the sweep's records — the fused
/// pipeline's replacement for the per-match `trace.event()` calls.
struct RecordsByIndex {
  std::unordered_map<std::size_t, const SweepSend*> sends;
  std::unordered_map<std::size_t, const SweepRecv*> recvs;

  explicit RecordsByIndex(const SweepData& sweep) {
    std::size_t ns = 0;
    std::size_t nr = 0;
    for (const auto& [key, ch] : sweep.channels) {
      ns += ch.sends.size();
      nr += ch.recvs.size();
    }
    sends.reserve(ns);
    recvs.reserve(nr);
    for (const auto& [key, ch] : sweep.channels) {
      for (const auto& s : ch.sends) sends.emplace(s.index, &s);
      for (const auto& r : ch.recvs) recvs.emplace(r.index, &r);
    }
  }
};

}  // namespace

TrafficReport compute_traffic(const SweepData& sweep,
                              const trace::MatchReport& report,
                              int num_ranks) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global().histogram(
                             "analysis.traffic_ns", obs::Unit::kNanoseconds),
                         /*rank=*/-1);
  TrafficReport out;
  const auto nranks = static_cast<std::size_t>(num_ranks);
  out.ranks.resize(nranks);
  for (mpi::Rank r = 0; r < num_ranks; ++r) {
    out.ranks[static_cast<std::size_t>(r)].rank = r;
  }

  const RecordsByIndex recs(sweep);

  const std::size_t nmatches = report.matches.size();
  const std::size_t nchunks = (nmatches + kMatchChunk - 1) / kMatchChunk;
  std::vector<TrafficPartial> partials(nchunks);
  exec::Executor::global().parallel_for(
      nchunks, "session.traffic", [&](std::size_t c) {
        auto& part = partials[c];
        part.ranks.resize(nranks);
        const std::size_t lo = c * kMatchChunk;
        const std::size_t hi = std::min(lo + kMatchChunk, nmatches);
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& m = report.matches[k];
          const SweepSend& send = *recs.sends.at(m.send_index);
          const SweepRecv& recv = *recs.recvs.at(m.recv_index);
          auto& ch = part.channels[{send.rank, send.peer}];
          ch.src = send.rank;
          ch.dst = send.peer;
          const auto latency = recv.t_end - send.t_start;
          if (ch.messages == 0) {
            ch.min_latency = ch.max_latency = latency;
          } else {
            ch.min_latency = std::min(ch.min_latency, latency);
            ch.max_latency = std::max(ch.max_latency, latency);
          }
          ch.latency_sum += latency;
          ++ch.messages;
          ch.bytes += send.bytes;

          auto& s = part.ranks[static_cast<std::size_t>(send.rank)];
          ++s.sends;
          s.bytes_out += send.bytes;
          auto& d = part.ranks[static_cast<std::size_t>(recv.rank)];
          ++d.recvs;
          d.bytes_in += recv.bytes;
        }
      });

  // Merge in chunk order (all operations commutative-exact; the order
  // only matters for picking first-writer src/dst, which every chunk
  // sets identically).
  std::map<std::pair<mpi::Rank, mpi::Rank>, ChannelAgg> channels;
  for (const auto& part : partials) {
    for (const auto& [key, agg] : part.channels) {
      auto& ch = channels[key];
      if (ch.messages == 0) {
        ch = agg;
        continue;
      }
      ch.min_latency = std::min(ch.min_latency, agg.min_latency);
      ch.max_latency = std::max(ch.max_latency, agg.max_latency);
      ch.latency_sum += agg.latency_sum;
      ch.messages += agg.messages;
      ch.bytes += agg.bytes;
    }
    for (std::size_t r = 0; r < part.ranks.size(); ++r) {
      auto& dst = out.ranks[r];
      dst.sends += part.ranks[r].sends;
      dst.recvs += part.ranks[r].recvs;
      dst.bytes_out += part.ranks[r].bytes_out;
      dst.bytes_in += part.ranks[r].bytes_in;
    }
  }
  for (const auto& [key, agg] : channels) {
    ChannelStats ch;
    ch.src = agg.src;
    ch.dst = agg.dst;
    ch.messages = agg.messages;
    ch.bytes = agg.bytes;
    ch.min_latency = agg.min_latency;
    ch.max_latency = agg.max_latency;
    ch.mean_latency = agg.messages > 0 ? static_cast<double>(agg.latency_sum) /
                                             static_cast<double>(agg.messages)
                                       : 0.0;
    out.channels.push_back(ch);
  }

  // Irregularities: missed messages first.
  for (std::size_t i : report.unmatched_sends) {
    const SweepSend& e = *recs.sends.at(i);
    std::ostringstream os;
    os << "missed message: send " << e.rank << "->" << e.peer << " tag "
       << e.tag << " was never received";
    out.irregularities.push_back(Irregularity{
        Irregularity::Kind::kUnmatchedSend, e.rank, i, os.str()});
  }
  for (std::size_t i : report.unmatched_recvs) {
    const SweepRecv& e = *recs.recvs.at(i);
    std::ostringstream os;
    os << "orphan receive on rank " << e.rank << " from " << e.peer
       << " (no send record)";
    out.irregularities.push_back(
        Irregularity{Irregularity::Kind::kOrphanRecv, e.rank, i, os.str()});
  }

  // Receive-count outliers among the non-root ranks (the Fig. 6
  // observation: workers 1-6 received 2 messages, worker 7 only 1).
  // A rank is an outlier when its receive count differs from the
  // majority count of ranks with the same role; as a simple robust
  // proxy, compare against the modal receive count over ranks > 0.
  if (num_ranks > 2) {
    std::map<std::uint64_t, int> histogram;
    for (mpi::Rank r = 1; r < num_ranks; ++r) {
      ++histogram[out.ranks[static_cast<std::size_t>(r)].recvs];
    }
    std::uint64_t modal = 0;
    int best = -1;
    for (const auto& [count, freq] : histogram) {
      if (freq > best) {
        best = freq;
        modal = count;
      }
    }
    if (histogram.size() > 1) {
      for (mpi::Rank r = 1; r < num_ranks; ++r) {
        const auto& rt = out.ranks[static_cast<std::size_t>(r)];
        if (rt.recvs != modal) {
          std::ostringstream os;
          os << "rank " << r << " received " << rt.recvs
             << " messages; its peers received " << modal;
          out.irregularities.push_back(Irregularity{
              Irregularity::Kind::kRecvCountOutlier, r, 0, os.str()});
        }
      }
    }
  }
  return out;
}

MessagePools compute_message_pools(const SweepData& sweep) {
  MessagePools pools;
  std::size_t ns = 0;
  std::size_t nw = 0;
  for (const auto& [key, ch] : sweep.channels) {
    ns += ch.sends.size();
    for (const auto& r : ch.recvs) nw += r.wildcard ? 1 : 0;
  }
  pools.sends.reserve(ns);
  pools.wildcard_recvs.reserve(nw);
  for (const auto& [key, ch] : sweep.channels) {
    pools.sends.insert(pools.sends.end(), ch.sends.begin(), ch.sends.end());
    for (const auto& r : ch.recvs) {
      if (r.wildcard) pools.wildcard_recvs.push_back(r);
    }
  }
  // Display order — the order the pre-refactor gather sweep produced.
  const auto by_index = [](const auto& a, const auto& b) {
    return a.index < b.index;
  };
  std::sort(pools.sends.begin(), pools.sends.end(), by_index);
  std::sort(pools.wildcard_recvs.begin(), pools.wildcard_recvs.end(),
            by_index);
  return pools;
}

graph::CommGraph compute_comm_graph(const SweepData& sweep,
                                    const trace::MatchReport& report,
                                    const trace::RankIndex& index) {
  const RecordsByIndex recs(sweep);

  // Node per matched pair, then per unmatched half.  Matched node i is
  // simply match i, so the slots fill in parallel chunks; the chunk
  // size is fixed so the layout never depends on thread count.
  const std::size_t nmatches = report.matches.size();
  std::vector<graph::MessageNode> nodes(nmatches);
  const std::size_t chunk = trace::kInMemorySegmentEvents;
  const std::size_t nchunks = (nmatches + chunk - 1) / chunk;
  exec::Executor::global().parallel_for(
      nchunks, "session.comm.nodes", [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(lo + chunk, nmatches);
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& m = report.matches[k];
          const SweepSend& send = *recs.sends.at(m.send_index);
          graph::MessageNode node;
          node.send_event = m.send_index;
          node.recv_event = m.recv_index;
          node.src = send.rank;
          node.dst = send.peer;
          node.tag = send.tag;
          nodes[k] = node;
        }
      });
  std::unordered_map<std::size_t, std::size_t> node_of_event;
  node_of_event.reserve(2 * nmatches + report.unmatched_sends.size() +
                        report.unmatched_recvs.size());
  for (std::size_t k = 0; k < nmatches; ++k) {
    node_of_event[report.matches[k].send_index] = k;
    node_of_event[report.matches[k].recv_index] = k;
  }
  for (std::size_t i : report.unmatched_sends) {
    const SweepSend& send = *recs.sends.at(i);
    node_of_event[i] = nodes.size();
    nodes.push_back(graph::MessageNode{i, graph::kNoEvent, send.rank,
                                       send.peer, send.tag});
  }
  for (std::size_t i : report.unmatched_recvs) {
    const SweepRecv& recv = *recs.recvs.at(i);
    node_of_event[i] = nodes.size();
    nodes.push_back(graph::MessageNode{graph::kNoEvent, i, recv.peer,
                                       recv.rank, recv.tag});
  }

  // Arcs: per rank, consecutive message endpoints in program order
  // connect their messages.  The shared rank index supplies program
  // order; non-message events simply miss the node lookup.  Rank
  // sweeps are independent and the set union below is
  // order-insensitive, so the final sorted arc list is deterministic.
  const std::size_t nranks = index.seq.size();
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> rank_arcs(
      nranks);
  exec::Executor::global().parallel_for(
      nranks, "session.comm.arcs", [&](std::size_t ri) {
        std::size_t prev_node = graph::kNoEvent;
        for (const std::size_t i : index.seq[ri]) {
          const auto it = node_of_event.find(i);
          if (it == node_of_event.end()) continue;
          if (prev_node != graph::kNoEvent && prev_node != it->second) {
            rank_arcs[ri].emplace_back(prev_node, it->second);
          }
          prev_node = it->second;
        }
      });
  std::set<std::pair<std::size_t, std::size_t>> arc_set;
  for (const auto& arcs : rank_arcs) {
    arc_set.insert(arcs.begin(), arcs.end());
  }
  return graph::CommGraph(
      std::move(nodes),
      std::vector<std::pair<std::size_t, std::size_t>>(arc_set.begin(),
                                                       arc_set.end()));
}

}  // namespace tdbg::analysis
