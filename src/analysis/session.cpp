#include "analysis/session.hpp"

#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "support/clock.hpp"
#include "support/strings.hpp"
#include "telemetry/span.hpp"

namespace tdbg::analysis {

namespace {

/// Key for the call-graph cache: rank, or -1 for "all ranks".
int call_graph_key(std::optional<mpi::Rank> rank) {
  return rank ? static_cast<int>(*rank) : -1;
}

}  // namespace

Session::Session(trace::Trace trace) : trace_(std::move(trace)) {}

Session::Fingerprint Session::fingerprint(const trace::Trace& t,
                                          std::size_t i) const {
  const auto& e = t.event(i);
  return Fingerprint{e.rank, e.marker, e.t_start};
}

template <typename T, typename Build>
const T& Session::materialize(Artifact<T>& slot, const char* span_name,
                              Build&& build) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (slot.value) {
    ++slot.reuses;
    obs::MetricsRegistry::global().counter("session.artifacts.reused")
        .add(/*rank=*/-1);
    return *slot.value;
  }
  telemetry::Span span{std::string_view(span_name)};
  const auto t0 = support::now_ns();
  slot.value.emplace(build());
  slot.last_ns = support::now_ns() - t0;
  slot.watermark = trace_.size();
  ++slot.computes;
  obs::MetricsRegistry::global().counter("session.artifacts.computed")
      .add(/*rank=*/-1);
  return *slot.value;
}

template <typename T>
void Session::invalidate(Artifact<T>& slot) {
  if (!slot.value) return;
  slot.value.reset();
  slot.watermark = 0;
  obs::MetricsRegistry::global().counter("session.artifacts.invalidated")
      .add(/*rank=*/-1);
}

void Session::update(trace::Trace trace) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  const std::size_t old_size = trace_.size();

  // Prefix-stable extension?  Cheap structural check: at least as many
  // events, and the same event identities at the prefix edges.  A
  // reordered / replaced trace fails it and takes the full path.
  bool prefix_stable = trace.size() >= old_size;
  if (prefix_stable && old_size > 0) {
    prefix_stable = fingerprint(trace, 0) == fingerprint(trace_, 0) &&
                    fingerprint(trace, old_size - 1) ==
                        fingerprint(trace_, old_size - 1);
  }
  if (prefix_stable && trace.size() == old_size) {
    // Same trace state: every artifact stays valid.
    trace_ = std::move(trace);
    return;
  }

  // Everything derived from the sweep (or the trace) goes; the sweep
  // itself survives a prefix-stable extension and extends over the
  // delta segments only.
  invalidate(match_);
  invalidate(rank_index_);
  invalidate(order_);
  invalidate(traffic_);
  invalidate(races_);
  invalidate(comm_graph_);
  invalidate(action_graph_);
  invalidate(critical_path_);
  invalidate(intertwined_);
  for (auto& [limit, slot] : trace_graphs_) invalidate(slot);
  for (auto& [key, slot] : call_graphs_) invalidate(slot);
  if (!prefix_stable) invalidate(sweep_);

  trace_ = std::move(trace);

  if (prefix_stable && sweep_.value) {
    // Incremental path: sweep only the appended segments.  Counted as
    // a (delta) compute, not a reuse — work happened.
    telemetry::Span span{std::string_view("session.sweep.delta")};
    const auto t0 = support::now_ns();
    extend_sweep(*sweep_.value, trace_);
    sweep_.last_ns = support::now_ns() - t0;
    sweep_.watermark = trace_.size();
    ++sweep_.computes;
    obs::MetricsRegistry::global().counter("session.artifacts.computed")
        .add(/*rank=*/-1);
  }
}

std::size_t Session::watermark() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return trace_.size();
}

const SweepData& Session::sweep() {
  return materialize(sweep_, "session.sweep",
                     [&] { return compute_sweep(trace_); });
}

const trace::MatchReport& Session::match_report() {
  return materialize(match_, "session.match",
                     [&] { return compute_match_report(sweep()); });
}

const trace::RankIndex& Session::rank_index() { return *rank_index_ptr(); }

std::shared_ptr<const trace::RankIndex> Session::rank_index_ptr() {
  return materialize(rank_index_, "session.rank_index",
                     [&] { return compute_rank_index(sweep()); });
}

const causality::CausalOrder& Session::causal_order() {
  return materialize(order_, "session.causal_order", [&] {
    return causality::CausalOrder(trace_, match_report(), rank_index_ptr());
  });
}

const TrafficReport& Session::traffic() {
  return materialize(traffic_, "session.traffic", [&] {
    return compute_traffic(sweep(), match_report(), trace_.num_ranks());
  });
}

const RaceReport& Session::races() {
  return materialize(races_, "session.races", [&] {
    return find_races(compute_message_pools(sweep()), causal_order());
  });
}

const graph::CommGraph& Session::comm_graph() {
  return materialize(comm_graph_, "session.comm_graph", [&] {
    return compute_comm_graph(sweep(), match_report(), rank_index());
  });
}

const graph::ActionGraph& Session::action_graph() {
  return materialize(action_graph_, "session.action_graph", [&] {
    return graph::ActionGraph::from_trace(trace_);
  });
}

const graph::TraceGraph& Session::trace_graph(std::size_t merge_limit) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return materialize(trace_graphs_[merge_limit], "session.trace_graph", [&] {
    return graph::TraceGraph::from_trace(trace_, merge_limit);
  });
}

const graph::CallGraph& Session::call_graph(std::optional<mpi::Rank> rank) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return materialize(call_graphs_[call_graph_key(rank)], "session.call_graph",
                     [&] {
                       // Projected from the cached default trace graph,
                       // so N rank projections share one merge.
                       return graph::CallGraph::project(trace_graph(), rank);
                     });
}

const CriticalPath& Session::critical_path() {
  return materialize(critical_path_, "session.critical_path", [&] {
    return analysis::critical_path(trace_, match_report(), rank_index());
  });
}

const std::vector<IntertwinedPair>& Session::intertwined() {
  return materialize(intertwined_, "session.intertwined", [&] {
    return find_intertwined(trace_, causal_order());
  });
}

std::vector<ModelResult> Session::check_model(const std::string& pattern) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  telemetry::Span span{std::string_view("session.check_model")};
  return check_model_all(trace_, action_graph(), pattern);
}

void Session::fill_info(std::vector<PassInfo>& out, const char* name,
                        const char* deps, bool incremental,
                        std::uint64_t computes, std::uint64_t reuses,
                        support::TimeNs last_ns, std::size_t watermark,
                        bool cached) const {
  PassInfo info;
  info.name = name;
  info.deps = deps;
  info.incremental = incremental;
  info.cached = cached;
  info.computes = computes;
  info.reuses = reuses;
  info.last_ns = last_ns;
  info.watermark = watermark;
  out.push_back(std::move(info));
}

std::vector<PassInfo> Session::pass_states() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::vector<PassInfo> out;
  const auto one = [&](const char* name, const char* deps, bool incremental,
                       const auto& slot) {
    fill_info(out, name, deps, incremental, slot.computes, slot.reuses,
              slot.last_ns, slot.watermark, slot.value.has_value());
  };
  one("sweep", "-", true, sweep_);
  one("match", "sweep", true, match_);
  one("rank_index", "sweep", true, rank_index_);
  one("traffic", "sweep, match", true, traffic_);
  one("comm_graph", "sweep, match, rank_index", true, comm_graph_);
  one("causal_order", "match, rank_index", false, order_);
  one("races", "sweep, causal_order", false, races_);
  one("critical_path", "match, rank_index", false, critical_path_);
  one("intertwined", "causal_order", false, intertwined_);
  one("action_graph", "trace", false, action_graph_);
  // The parameterized graph caches aggregate across their keys.
  const auto many = [&](const char* name, const char* deps,
                        const auto& slots) {
    std::uint64_t computes = 0;
    std::uint64_t reuses = 0;
    support::TimeNs last_ns = 0;
    std::size_t watermark = 0;
    bool cached = false;
    for (const auto& [key, slot] : slots) {
      computes += slot.computes;
      reuses += slot.reuses;
      last_ns = std::max(last_ns, slot.last_ns);
      watermark = std::max(watermark, slot.watermark);
      cached = cached || slot.value.has_value();
    }
    fill_info(out, name, deps, false, computes, reuses, last_ns, watermark,
              cached);
  };
  many("trace_graph", "trace", trace_graphs_);
  many("call_graph", "trace_graph", call_graphs_);
  return out;
}

std::string Session::describe() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  const auto states = pass_states();
  std::ostringstream os;
  os << "analysis session: " << states.size() << " passes, watermark "
     << trace_.size() << " event(s)\n";
  os << "  pass           state     inc  computes  reuses  last build\n";
  for (const auto& s : states) {
    os << "  " << s.name;
    for (std::size_t p = s.name.size(); p < 15; ++p) os << ' ';
    os << (s.cached ? "cached  " : "pending ") << "  "
       << (s.incremental ? "yes" : "no ") << "  ";
    std::string computes = std::to_string(s.computes);
    os << computes;
    for (std::size_t p = computes.size(); p < 8; ++p) os << ' ';
    os << "  ";
    std::string reuses = std::to_string(s.reuses);
    os << reuses;
    for (std::size_t p = reuses.size(); p < 6; ++p) os << ' ';
    os << "  "
       << (s.computes > 0 ? support::human_duration(s.last_ns)
                          : std::string("-"))
       << "\n";
  }
  // Storage-side effectiveness of the passes: how much decode work the
  // trace backend's zone maps and column pruning saved so far (process
  // totals; nonzero only on columnar/segmented backends).
  auto& reg = obs::MetricsRegistry::global();
  os << "  trace decode: "
     << reg.counter("trace.decode.segments_skipped").total()
     << " segment(s) skipped, "
     << reg.counter("trace.decode.columns_skipped").total()
     << " column(s) skipped, "
     << support::human_bytes(
            reg.counter("trace.decode.decoded_bytes").total())
     << " decoded\n";
  return os.str();
}

}  // namespace tdbg::analysis
