#include "analysis/patterns.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/strings.hpp"

namespace tdbg::analysis {

namespace {

bool kind_from_name(const std::string& name, trace::EventKind* kind) {
  if (name == "enter") { *kind = trace::EventKind::kEnter; return true; }
  if (name == "send") { *kind = trace::EventKind::kSend; return true; }
  if (name == "recv") { *kind = trace::EventKind::kRecv; return true; }
  if (name == "coll") { *kind = trace::EventKind::kCollective; return true; }
  if (name == "compute") { *kind = trace::EventKind::kCompute; return true; }
  if (name == "mark") { *kind = trace::EventKind::kMark; return true; }
  return false;
}

bool token_matches(const PatternToken& token, const graph::Action& action,
                   const trace::ConstructRegistry& constructs) {
  if (!token.any_kind && action.kind != token.kind) return false;
  if (!token.construct.empty()) {
    if (action.construct == trace::kNoConstruct) return false;
    if (constructs.info(action.construct).name != token.construct) {
      return false;
    }
  }
  return true;
}

/// Backtracking sequence match: can pattern[j..] consume actions[i..]
/// entirely?  Action counts are already collapsed (one action = one
/// run), so `+`/`*` quantify over *actions*, not raw events.
bool match_from(const std::vector<graph::Action>& actions,
                const std::vector<PatternToken>& pattern,
                const trace::ConstructRegistry& constructs, std::size_t i,
                std::size_t j, std::size_t* deepest) {
  *deepest = std::max(*deepest, i);
  if (j == pattern.size()) return i == actions.size();
  const auto& t = pattern[j];
  switch (t.rep) {
    case PatternToken::Rep::kOnce:
      return i < actions.size() && token_matches(t, actions[i], constructs) &&
             match_from(actions, pattern, constructs, i + 1, j + 1, deepest);
    case PatternToken::Rep::kOpt:
      if (i < actions.size() && token_matches(t, actions[i], constructs) &&
          match_from(actions, pattern, constructs, i + 1, j + 1, deepest)) {
        return true;
      }
      return match_from(actions, pattern, constructs, i, j + 1, deepest);
    case PatternToken::Rep::kPlus:
      if (i >= actions.size() || !token_matches(t, actions[i], constructs)) {
        return false;
      }
      ++i;
      [[fallthrough]];
    case PatternToken::Rep::kStar: {
      // Greedy with backtracking: consume k matching actions, longest
      // first.
      std::size_t max_run = i;
      while (max_run < actions.size() &&
             token_matches(t, actions[max_run], constructs)) {
        ++max_run;
      }
      for (std::size_t stop = max_run + 1; stop-- > i;) {
        if (match_from(actions, pattern, constructs, stop, j + 1, deepest)) {
          return true;
        }
        if (stop == i) break;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

std::vector<PatternToken> parse_pattern(const std::string& pattern) {
  std::vector<PatternToken> tokens;
  std::istringstream in(pattern);
  std::string word;
  while (in >> word) {
    PatternToken token;
    if (!word.empty() &&
        (word.back() == '*' || word.back() == '+' || word.back() == '?')) {
      token.rep = word.back() == '*'   ? PatternToken::Rep::kStar
                  : word.back() == '+' ? PatternToken::Rep::kPlus
                                       : PatternToken::Rep::kOpt;
      word.pop_back();
    }
    const auto colon = word.find(':');
    const auto kind_name = word.substr(0, colon);
    if (colon != std::string::npos) {
      token.construct = word.substr(colon + 1);
    }
    if (kind_name == "any") {
      token.any_kind = true;
    } else if (!kind_from_name(kind_name, &token.kind)) {
      throw Error("bad pattern token kind: '" + kind_name +
                  "' (want enter/send/recv/coll/compute/mark/any)");
    }
    TDBG_CHECK(!kind_name.empty(), "empty pattern token");
    tokens.push_back(std::move(token));
  }
  TDBG_CHECK(!tokens.empty(), "empty pattern");
  return tokens;
}

ModelResult check_model(const trace::Trace& trace,
                        const graph::ActionGraph& actions, mpi::Rank rank,
                        const std::vector<PatternToken>& pattern) {
  ModelResult result;
  result.rank = rank;
  const auto& seq = actions.actions(rank);
  std::size_t deepest = 0;
  result.matched = match_from(seq, pattern, trace.constructs(), 0, 0,
                              &deepest);
  if (!result.matched) {
    result.failed_at = deepest;
    std::ostringstream os;
    if (deepest < seq.size()) {
      const auto& a = seq[deepest];
      os << "diverges at action " << deepest << ": "
         << trace::event_kind_name(a.kind) << " "
         << (a.construct == trace::kNoConstruct
                 ? std::string("?")
                 : trace.constructs().info(a.construct).name);
      if (a.count > 1) os << " x" << a.count;
    } else {
      os << "history ends after " << seq.size()
         << " actions but the model expects more";
    }
    result.detail = os.str();
  }
  return result;
}

std::vector<ModelResult> check_model_all(const trace::Trace& trace,
                                         const graph::ActionGraph& actions,
                                         const std::string& pattern) {
  const auto tokens = parse_pattern(pattern);
  // One backtracking match per rank into a pre-sized slot: the slot
  // is the rank index, so the result order never depends on task
  // scheduling.
  std::vector<ModelResult> results(
      static_cast<std::size_t>(trace.num_ranks()));
  exec::Executor::global().parallel_for(
      results.size(), "analysis.model", [&](std::size_t r) {
        results[r] =
            check_model(trace, actions, static_cast<mpi::Rank>(r), tokens);
      });
  return results;
}

}  // namespace tdbg::analysis
