#include "analysis/traffic.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"

namespace tdbg::analysis {

TrafficReport analyze_traffic(const trace::Trace& trace) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global().histogram(
                             "analysis.traffic_ns", obs::Unit::kNanoseconds),
                         /*rank=*/-1);
  TrafficReport report;
  const auto& matches = trace.match_report();

  std::map<std::pair<mpi::Rank, mpi::Rank>, ChannelStats> channels;
  report.ranks.resize(static_cast<std::size_t>(trace.num_ranks()));
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    report.ranks[static_cast<std::size_t>(r)].rank = r;
  }

  for (const auto& m : matches.matches) {
    const auto& send = trace.event(m.send_index);
    const auto& recv = trace.event(m.recv_index);
    auto& ch = channels[{send.rank, send.peer}];
    ch.src = send.rank;
    ch.dst = send.peer;
    const auto latency = recv.t_end - send.t_start;
    if (ch.messages == 0) {
      ch.min_latency = ch.max_latency = latency;
    } else {
      ch.min_latency = std::min(ch.min_latency, latency);
      ch.max_latency = std::max(ch.max_latency, latency);
    }
    ch.mean_latency += static_cast<double>(latency);
    ++ch.messages;
    ch.bytes += send.bytes;

    auto& s = report.ranks[static_cast<std::size_t>(send.rank)];
    ++s.sends;
    s.bytes_out += send.bytes;
    auto& d = report.ranks[static_cast<std::size_t>(recv.rank)];
    ++d.recvs;
    d.bytes_in += recv.bytes;
  }
  for (auto& [key, ch] : channels) {
    if (ch.messages > 0) {
      ch.mean_latency /= static_cast<double>(ch.messages);
    }
    report.channels.push_back(ch);
  }

  // Irregularities: missed messages first.
  for (std::size_t i : matches.unmatched_sends) {
    const auto& e = trace.event(i);
    std::ostringstream os;
    os << "missed message: send " << e.rank << "->" << e.peer << " tag "
       << e.tag << " was never received";
    report.irregularities.push_back(Irregularity{
        Irregularity::Kind::kUnmatchedSend, e.rank, i, os.str()});
  }
  for (std::size_t i : matches.unmatched_recvs) {
    const auto& e = trace.event(i);
    std::ostringstream os;
    os << "orphan receive on rank " << e.rank << " from " << e.peer
       << " (no send record)";
    report.irregularities.push_back(
        Irregularity{Irregularity::Kind::kOrphanRecv, e.rank, i, os.str()});
  }

  // Receive-count outliers among the non-root ranks (the Fig. 6
  // observation: workers 1-6 received 2 messages, worker 7 only 1).
  // A rank is an outlier when its receive count differs from the
  // majority count of ranks with the same role; as a simple robust
  // proxy, compare against the modal receive count over ranks > 0.
  if (trace.num_ranks() > 2) {
    std::map<std::uint64_t, int> histogram;
    for (mpi::Rank r = 1; r < trace.num_ranks(); ++r) {
      ++histogram[report.ranks[static_cast<std::size_t>(r)].recvs];
    }
    std::uint64_t modal = 0;
    int best = -1;
    for (const auto& [count, freq] : histogram) {
      if (freq > best) {
        best = freq;
        modal = count;
      }
    }
    if (histogram.size() > 1) {
      for (mpi::Rank r = 1; r < trace.num_ranks(); ++r) {
        const auto& rt = report.ranks[static_cast<std::size_t>(r)];
        if (rt.recvs != modal) {
          std::ostringstream os;
          os << "rank " << r << " received " << rt.recvs
             << " messages; its peers received " << modal;
          report.irregularities.push_back(Irregularity{
              Irregularity::Kind::kRecvCountOutlier, r, 0, os.str()});
        }
      }
    }
  }
  return report;
}

std::string TrafficReport::to_string() const {
  std::ostringstream os;
  os << "traffic report: " << channels.size() << " channels\n";
  for (const auto& ch : channels) {
    os << "  " << ch.src << " -> " << ch.dst << ": " << ch.messages
       << " msgs, " << ch.bytes << " bytes, latency mean "
       << static_cast<long long>(ch.mean_latency) << " ns\n";
  }
  os << "per-rank:\n";
  for (const auto& r : ranks) {
    os << "  rank " << r.rank << ": " << r.sends << " sends / " << r.recvs
       << " recvs, " << r.bytes_out << " out / " << r.bytes_in << " in\n";
  }
  if (irregularities.empty()) {
    os << "no irregularities\n";
  } else {
    os << "irregularities:\n";
    for (const auto& irr : irregularities) {
      os << "  ! " << irr.description << "\n";
    }
  }
  return os.str();
}

}  // namespace tdbg::analysis
