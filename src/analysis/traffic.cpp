#include "analysis/traffic.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "support/executor.hpp"

namespace tdbg::analysis {

namespace {

/// Matches aggregated per parallel task.  A fixed chunk size (never a
/// function of thread count) plus a chunk-ordered merge keeps the
/// report bit-identical at any parallelism; latency sums stay in exact
/// integer arithmetic until the final mean division, so no
/// floating-point reassociation can leak in either.
constexpr std::size_t kMatchChunk = 1u << 14;

struct ChannelAgg {
  mpi::Rank src = 0;
  mpi::Rank dst = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  support::TimeNs min_latency = 0;
  support::TimeNs max_latency = 0;
  std::int64_t latency_sum = 0;
};

struct RankAgg {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
};

struct TrafficPartial {
  std::map<std::pair<mpi::Rank, mpi::Rank>, ChannelAgg> channels;
  std::vector<RankAgg> ranks;
};

}  // namespace

TrafficReport analyze_traffic(const trace::Trace& trace) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global().histogram(
                             "analysis.traffic_ns", obs::Unit::kNanoseconds),
                         /*rank=*/-1);
  TrafficReport report;
  const auto& matches = trace.match_report();
  const auto nranks = static_cast<std::size_t>(trace.num_ranks());

  report.ranks.resize(nranks);
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    report.ranks[static_cast<std::size_t>(r)].rank = r;
  }

  const std::size_t nmatches = matches.matches.size();
  const std::size_t nchunks = (nmatches + kMatchChunk - 1) / kMatchChunk;
  std::vector<TrafficPartial> partials(nchunks);
  exec::Executor::global().parallel_for(
      nchunks, "analysis.traffic", [&](std::size_t c) {
        auto& part = partials[c];
        part.ranks.resize(nranks);
        const std::size_t lo = c * kMatchChunk;
        const std::size_t hi = std::min(lo + kMatchChunk, nmatches);
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& m = matches.matches[k];
          const auto send = trace.event(m.send_index);
          const auto recv = trace.event(m.recv_index);
          auto& ch = part.channels[{send.rank, send.peer}];
          ch.src = send.rank;
          ch.dst = send.peer;
          const auto latency = recv.t_end - send.t_start;
          if (ch.messages == 0) {
            ch.min_latency = ch.max_latency = latency;
          } else {
            ch.min_latency = std::min(ch.min_latency, latency);
            ch.max_latency = std::max(ch.max_latency, latency);
          }
          ch.latency_sum += latency;
          ++ch.messages;
          ch.bytes += send.bytes;

          auto& s = part.ranks[static_cast<std::size_t>(send.rank)];
          ++s.sends;
          s.bytes_out += send.bytes;
          auto& d = part.ranks[static_cast<std::size_t>(recv.rank)];
          ++d.recvs;
          d.bytes_in += recv.bytes;
        }
      });

  // Merge in chunk order (all operations commutative-exact; the order
  // only matters for picking first-writer src/dst, which every chunk
  // sets identically).
  std::map<std::pair<mpi::Rank, mpi::Rank>, ChannelAgg> channels;
  for (const auto& part : partials) {
    for (const auto& [key, agg] : part.channels) {
      auto& ch = channels[key];
      if (ch.messages == 0) {
        ch = agg;
        continue;
      }
      ch.min_latency = std::min(ch.min_latency, agg.min_latency);
      ch.max_latency = std::max(ch.max_latency, agg.max_latency);
      ch.latency_sum += agg.latency_sum;
      ch.messages += agg.messages;
      ch.bytes += agg.bytes;
    }
    for (std::size_t r = 0; r < part.ranks.size(); ++r) {
      auto& dst = report.ranks[r];
      dst.sends += part.ranks[r].sends;
      dst.recvs += part.ranks[r].recvs;
      dst.bytes_out += part.ranks[r].bytes_out;
      dst.bytes_in += part.ranks[r].bytes_in;
    }
  }
  for (const auto& [key, agg] : channels) {
    ChannelStats ch;
    ch.src = agg.src;
    ch.dst = agg.dst;
    ch.messages = agg.messages;
    ch.bytes = agg.bytes;
    ch.min_latency = agg.min_latency;
    ch.max_latency = agg.max_latency;
    ch.mean_latency = agg.messages > 0 ? static_cast<double>(agg.latency_sum) /
                                             static_cast<double>(agg.messages)
                                       : 0.0;
    report.channels.push_back(ch);
  }

  // Irregularities: missed messages first.
  for (std::size_t i : matches.unmatched_sends) {
    const auto& e = trace.event(i);
    std::ostringstream os;
    os << "missed message: send " << e.rank << "->" << e.peer << " tag "
       << e.tag << " was never received";
    report.irregularities.push_back(Irregularity{
        Irregularity::Kind::kUnmatchedSend, e.rank, i, os.str()});
  }
  for (std::size_t i : matches.unmatched_recvs) {
    const auto& e = trace.event(i);
    std::ostringstream os;
    os << "orphan receive on rank " << e.rank << " from " << e.peer
       << " (no send record)";
    report.irregularities.push_back(
        Irregularity{Irregularity::Kind::kOrphanRecv, e.rank, i, os.str()});
  }

  // Receive-count outliers among the non-root ranks (the Fig. 6
  // observation: workers 1-6 received 2 messages, worker 7 only 1).
  // A rank is an outlier when its receive count differs from the
  // majority count of ranks with the same role; as a simple robust
  // proxy, compare against the modal receive count over ranks > 0.
  if (trace.num_ranks() > 2) {
    std::map<std::uint64_t, int> histogram;
    for (mpi::Rank r = 1; r < trace.num_ranks(); ++r) {
      ++histogram[report.ranks[static_cast<std::size_t>(r)].recvs];
    }
    std::uint64_t modal = 0;
    int best = -1;
    for (const auto& [count, freq] : histogram) {
      if (freq > best) {
        best = freq;
        modal = count;
      }
    }
    if (histogram.size() > 1) {
      for (mpi::Rank r = 1; r < trace.num_ranks(); ++r) {
        const auto& rt = report.ranks[static_cast<std::size_t>(r)];
        if (rt.recvs != modal) {
          std::ostringstream os;
          os << "rank " << r << " received " << rt.recvs
             << " messages; its peers received " << modal;
          report.irregularities.push_back(Irregularity{
              Irregularity::Kind::kRecvCountOutlier, r, 0, os.str()});
        }
      }
    }
  }
  return report;
}

std::string TrafficReport::to_string() const {
  std::ostringstream os;
  os << "traffic report: " << channels.size() << " channels\n";
  for (const auto& ch : channels) {
    os << "  " << ch.src << " -> " << ch.dst << ": " << ch.messages
       << " msgs, " << ch.bytes << " bytes, latency mean "
       << static_cast<long long>(ch.mean_latency) << " ns\n";
  }
  os << "per-rank:\n";
  for (const auto& r : ranks) {
    os << "  rank " << r.rank << ": " << r.sends << " sends / " << r.recvs
       << " recvs, " << r.bytes_out << " out / " << r.bytes_in << " in\n";
  }
  if (irregularities.empty()) {
    os << "no irregularities\n";
  } else {
    os << "irregularities:\n";
    for (const auto& irr : irregularities) {
      os << "  ! " << irr.description << "\n";
    }
  }
  return os.str();
}

}  // namespace tdbg::analysis
