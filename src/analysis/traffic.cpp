#include "analysis/traffic.hpp"

#include <sstream>

namespace tdbg::analysis {

std::string TrafficReport::to_string() const {
  std::ostringstream os;
  os << "traffic report: " << channels.size() << " channels\n";
  for (const auto& ch : channels) {
    os << "  " << ch.src << " -> " << ch.dst << ": " << ch.messages
       << " msgs, " << ch.bytes << " bytes, latency mean "
       << static_cast<long long>(ch.mean_latency) << " ns\n";
  }
  os << "per-rank:\n";
  for (const auto& r : ranks) {
    os << "  rank " << r.rank << ": " << r.sends << " sends / " << r.recvs
       << " recvs, " << r.bytes_out << " out / " << r.bytes_in << " in\n";
  }
  if (irregularities.empty()) {
    os << "no irregularities\n";
  } else {
    os << "irregularities:\n";
    for (const auto& irr : irregularities) {
      os << "  ! " << irr.description << "\n";
    }
  }
  return os.str();
}

}  // namespace tdbg::analysis
