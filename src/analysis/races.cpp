#include "analysis/races.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "support/executor.hpp"

namespace tdbg::analysis {

namespace {

/// Wildcard receives examined per pairing task.  Each receive's
/// candidate scan is quadratic in the send pool, so chunks are kept
/// small; the size is fixed (never thread-count derived) so the
/// chunk-ordered concatenation below is deterministic.
constexpr std::size_t kRecvChunk = 16;

}  // namespace

RaceReport find_races(const MessagePools& pools,
                      const causality::CausalOrder& order) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global().histogram(
                             "analysis.races_ns", obs::Unit::kNanoseconds),
                         /*rank=*/-1);
  RaceReport report;
  const auto& matches = order.matches();

  std::unordered_map<std::size_t, std::size_t> send_of_recv;
  std::unordered_map<std::size_t, std::size_t> recv_of_send;
  for (const auto& m : matches.matches) {
    send_of_recv.emplace(m.recv_index, m.send_index);
    recv_of_send.emplace(m.send_index, m.recv_index);
  }

  // The candidate pools arrive in display order from the fused sweep —
  // the order the pre-session per-segment gather produced.
  const auto& sends = pools.sends;
  const auto& wildcard_recvs = pools.wildcard_recvs;

  std::unordered_map<std::size_t, const SweepSend*> send_records;
  send_records.reserve(sends.size());
  for (const auto& s : sends) send_records.emplace(s.index, &s);

  // Pairing: chunks of receives in parallel over read-only state; the
  // per-chunk race lists concatenate in chunk order, which is the
  // serial algorithm's receive display order.
  const std::size_t nrecvs = wildcard_recvs.size();
  const std::size_t nchunks = (nrecvs + kRecvChunk - 1) / kRecvChunk;
  std::vector<std::vector<MessageRace>> per_chunk(nchunks);
  exec::Executor::global().parallel_for(
      nchunks, "analysis.races.pair", [&](std::size_t c) {
        const std::size_t lo = c * kRecvChunk;
        const std::size_t hi = std::min(lo + kRecvChunk, nrecvs);
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& recv = wildcard_recvs[k];
          const std::size_t r = recv.index;
          const auto matched_it = send_of_recv.find(r);
          if (matched_it == send_of_recv.end()) continue;
          const std::size_t matched = matched_it->second;
          const auto matched_send_it = send_records.find(matched);
          if (matched_send_it == send_records.end()) continue;
          const auto& matched_send = *matched_send_it->second;

          MessageRace race;
          race.recv_index = r;
          race.matched_send = matched;

          for (const auto& send : sends) {
            const std::size_t s = send.index;
            if (s == matched) continue;
            if (send.peer != recv.rank) continue;  // different destination
            // Tag compatibility with the posted receive.  The posted
            // tag is not stored separately; the matched message's tag
            // equals it unless the receive was also ANY_TAG.
            // Requiring equal tags is the conservative
            // (no-false-positive) choice.
            if (send.tag != recv.tag) continue;
            // m' cannot race if its send causally requires R to be
            // done.
            if (order.happens_before(r, s)) continue;
            // m' cannot race if it was consumed strictly before R
            // could see it.
            const auto consumed = recv_of_send.find(s);
            if (consumed != recv_of_send.end() &&
                order.happens_before(consumed->second, r)) {
              continue;
            }
            // Non-overtaking: an earlier same-channel message than m
            // from the same source is ordered, not racing — but only
            // when it precedes m on the same (source, dest) channel
            // AND was consumed by the same rank earlier; a *later*
            // same-source message can still race.  Distinct sources
            // always race.
            if (send.rank == matched_send.rank &&
                order.happens_before(s, matched)) {
              continue;
            }
            race.candidates.push_back(s);
          }
          if (!race.candidates.empty()) {
            per_chunk[c].push_back(std::move(race));
          }
        }
      });
  for (auto& chunk : per_chunk) {
    for (auto& race : chunk) report.races.push_back(std::move(race));
  }
  return report;
}

}  // namespace tdbg::analysis
