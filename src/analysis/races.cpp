#include "analysis/races.hpp"

#include <unordered_map>

#include "obs/metrics.hpp"

namespace tdbg::analysis {

RaceReport find_races(const trace::Trace& trace,
                      const causality::CausalOrder& order) {
  obs::ScopedTimer timer(obs::MetricsRegistry::global().histogram(
                             "analysis.races_ns", obs::Unit::kNanoseconds),
                         /*rank=*/-1);
  RaceReport report;
  const auto& matches = order.matches();

  std::unordered_map<std::size_t, std::size_t> send_of_recv;
  std::unordered_map<std::size_t, std::size_t> recv_of_send;
  for (const auto& m : matches.matches) {
    send_of_recv.emplace(m.recv_index, m.send_index);
    recv_of_send.emplace(m.send_index, m.recv_index);
  }

  // One sweep gathers the candidate pools; the quadratic pairing below
  // then runs over local copies instead of re-querying the store.
  struct Indexed {
    std::size_t index;
    trace::Event event;
  };
  std::vector<Indexed> sends;
  std::vector<Indexed> wildcard_recvs;
  trace.for_each_event([&](std::size_t i, const trace::Event& e) {
    if (e.kind == trace::EventKind::kSend) {
      sends.push_back(Indexed{i, e});
    } else if (e.kind == trace::EventKind::kRecv && e.wildcard) {
      wildcard_recvs.push_back(Indexed{i, e});
    }
  });
  std::unordered_map<std::size_t, const trace::Event*> send_events;
  send_events.reserve(sends.size());
  for (const auto& s : sends) send_events.emplace(s.index, &s.event);

  for (const auto& [r, recv] : wildcard_recvs) {
    const auto matched_it = send_of_recv.find(r);
    if (matched_it == send_of_recv.end()) continue;
    const std::size_t matched = matched_it->second;
    const auto matched_send_it = send_events.find(matched);
    if (matched_send_it == send_events.end()) continue;
    const auto& matched_send = *matched_send_it->second;

    MessageRace race;
    race.recv_index = r;
    race.matched_send = matched;

    for (const auto& [s, send] : sends) {
      if (s == matched) continue;
      if (send.peer != recv.rank) continue;  // different destination
      // Tag compatibility with the posted receive.  The posted tag is
      // not stored separately; the matched message's tag equals it
      // unless the receive was also ANY_TAG.  Requiring equal tags is
      // the conservative (no-false-positive) choice.
      if (send.tag != recv.tag) continue;
      // m' cannot race if its send causally requires R to be done.
      if (order.happens_before(r, s)) continue;
      // m' cannot race if it was consumed strictly before R could see
      // it.
      const auto consumed = recv_of_send.find(s);
      if (consumed != recv_of_send.end() &&
          order.happens_before(consumed->second, r)) {
        continue;
      }
      // Non-overtaking: an earlier same-channel message than m from
      // the same source is ordered, not racing — but only when it
      // precedes m on the same (source, dest) channel AND was
      // consumed by the same rank earlier; a *later* same-source
      // message can still race.  Distinct sources always race.
      if (send.rank == matched_send.rank &&
          order.happens_before(s, matched)) {
        continue;
      }
      race.candidates.push_back(s);
    }
    if (!race.candidates.empty()) report.races.push_back(std::move(race));
  }
  return report;
}

}  // namespace tdbg::analysis
