#include "analysis/intertwined.hpp"

namespace tdbg::analysis {

std::vector<IntertwinedPair> find_intertwined(
    const trace::Trace& trace, const causality::CausalOrder& order) {
  (void)trace;
  std::vector<IntertwinedPair> out;
  const auto& matches = order.matches().matches;
  for (std::size_t i = 0; i < matches.size(); ++i) {
    for (std::size_t j = 0; j < matches.size(); ++j) {
      if (i == j) continue;
      const auto& m1 = matches[i];
      const auto& m2 = matches[j];
      if (order.happens_before(m1.send_index, m2.send_index) &&
          order.happens_before(m2.recv_index, m1.recv_index)) {
        out.push_back(IntertwinedPair{m1.send_index, m1.recv_index,
                                      m2.send_index, m2.recv_index});
      }
    }
  }
  return out;
}

}  // namespace tdbg::analysis
