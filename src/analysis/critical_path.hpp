#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

/// \file critical_path.hpp
/// Critical-path analysis of the execution history — the classic
/// trace-graph query (§6: the graph abstraction "provides a good basis
/// for execution analysis"): the longest chain of causally-ordered
/// work through the run.  Everything off the critical path had slack;
/// speeding it up cannot shorten the run.
///
/// The DAG is the happens-before covering relation (per-rank program
/// order plus send→receive edges); node weight is the event's own
/// duration.  The analysis reports the chain, its length, and how the
/// chain's time divides across ranks — which rank the run was
/// "waiting on".

namespace tdbg::analysis {

/// The critical path of one trace.
struct CriticalPath {
  std::vector<std::size_t> events;  ///< event indices, causally ordered

  /// Effective (overlap- and wait-clipped) duration of each path
  /// event, aligned with `events`.
  std::vector<support::TimeNs> durations;

  support::TimeNs total = 0;  ///< summed effective durations

  /// Time the path spends on each rank (indexed by rank).
  std::vector<support::TimeNs> per_rank;

  /// Times the path hops between ranks (message edges taken).
  std::size_t rank_switches = 0;

  /// Human-readable rendering (top contributions).
  [[nodiscard]] std::string to_string(const trace::Trace& trace,
                                      std::size_t max_rows = 12) const;
};

/// Computes the critical path.  O(events + messages).  `matches` and
/// `index` come from the owning `analysis::Session`
/// (`Session::critical_path()` is the public entry point).
CriticalPath critical_path(const trace::Trace& trace,
                           const trace::MatchReport& matches,
                           const trace::RankIndex& index);

}  // namespace tdbg::analysis
