#pragma once

#include <string>
#include <vector>

#include "mpi/wait_registry.hpp"
#include "trace/trace.hpp"

/// \file deadlock.hpp
/// Deadlock explanation (paper §4.4: "the debugger is also able to
/// detect deadlocks due to circular dependency in sends or receives").
///
/// The runtime's watchdog *detects* that a run is globally stuck; this
/// module *explains* it: it builds the wait-for graph from the final
/// wait snapshot, finds the circular dependency, and names the ranks
/// involved — turning Figure 5's picture ("processes 0 and 7 are
/// blocked in receives waiting for data from each other") into a
/// report.

namespace tdbg::analysis {

/// One wait-for edge: `rank` cannot proceed until `on` acts.
struct WaitEdge {
  mpi::Rank rank = 0;
  mpi::Rank on = 0;
  mpi::WaitKind kind = mpi::WaitKind::kRecv;
  mpi::Tag tag = mpi::kAnyTag;
};

/// Deadlock explanation.
struct DeadlockReport {
  bool deadlocked = false;

  /// The ranks of one dependency cycle, in wait-for order (each waits
  /// on the next, the last waits on the first).  Empty when the stall
  /// is not cyclic (e.g. a rank waiting on a finished rank).
  std::vector<mpi::Rank> cycle;

  /// Every wait-for edge among the blocked ranks.
  std::vector<WaitEdge> edges;

  /// Ranks blocked on a rank that already finished (starvation — no
  /// cycle, but equally fatal).
  std::vector<mpi::Rank> starved;

  /// Human-readable summary.
  std::string description;
};

/// Explains a wait snapshot (from `RunResult::final_waits`).
///
/// A receive with a specific source waits on that rank.  An
/// ANY_SOURCE receive waits on *every* rank that could still send —
/// it contributes an edge per candidate and participates in a cycle
/// only if all its candidates are blocked or finished.
DeadlockReport explain_deadlock(const std::vector<mpi::WaitInfo>& waits);

}  // namespace tdbg::analysis
