#include "causality/causal_order.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace tdbg::causality {

CausalOrder::CausalOrder(const trace::Trace& trace, trace::MatchReport matches,
                         std::shared_ptr<const trace::RankIndex> index)
    : trace_(&trace), matches_(std::move(matches)), index_(std::move(index)) {
  TDBG_CHECK(index_ != nullptr, "causal order needs a rank index");
  obs::ScopedTimer timer(
      obs::MetricsRegistry::global().histogram("analysis.causal_order_ns",
                                               obs::Unit::kNanoseconds),
      /*rank=*/-1);
  const auto n = trace.size();
  const auto ranks = static_cast<std::size_t>(trace.num_ranks());
  clocks_.assign(n, {});

  // Map receive event -> matched send event.
  std::unordered_map<std::size_t, std::size_t> send_of_recv;
  send_of_recv.reserve(matches_.matches.size());
  for (const auto& m : matches_.matches) {
    send_of_recv.emplace(m.recv_index, m.send_index);
  }

  // Propagate clocks in dependency order.  Each rank's events are
  // processed in program order; a receive additionally waits for its
  // matched send.  Round-robin over ranks until everything is done —
  // progress is guaranteed because the trace comes from a real
  // execution, whose message edges cannot form a cycle with program
  // order.
  std::vector<std::size_t> next(ranks, 0);
  std::size_t done = 0;
  bool progressed = true;
  while (done < n) {
    TDBG_CHECK(progressed,
               "cyclic message dependency in trace (corrupt trace file?)");
    progressed = false;
    for (std::size_t r = 0; r < ranks; ++r) {
      const auto& seq = seqs()[r];
      while (next[r] < seq.size()) {
        const std::size_t e = seq[next[r]];
        const auto it = send_of_recv.find(e);
        const bool needs_send = it != send_of_recv.end();
        if (needs_send && clocks_[it->second].empty()) break;  // wait for send

        std::vector<std::uint32_t> vc(ranks, 0);
        if (next[r] > 0) vc = clocks_[seq[next[r] - 1]];
        if (needs_send) {
          const auto& sc = clocks_[it->second];
          for (std::size_t q = 0; q < ranks; ++q) {
            vc[q] = std::max(vc[q], sc[q]);
          }
        }
        vc[r] = static_cast<std::uint32_t>(next[r] + 1);
        clocks_[e] = std::move(vc);
        ++next[r];
        ++done;
        progressed = true;
      }
    }
  }
}

const std::vector<std::uint32_t>& CausalOrder::clock(std::size_t e) const {
  return clocks_.at(e);
}

std::size_t CausalOrder::position(std::size_t e) const {
  return pos_of(e);
}

bool CausalOrder::happens_before(std::size_t a, std::size_t b) const {
  if (a == b) return false;
  const auto ra = static_cast<std::size_t>(trace_->event(a).rank);
  // a happens before b iff b's clock has seen a's position on a's rank.
  return clocks_.at(b)[ra] >= pos_of(a) + 1;
}

bool CausalOrder::concurrent(std::size_t a, std::size_t b) const {
  return a != b && !happens_before(a, b) && !happens_before(b, a);
}

Frontier CausalOrder::past_frontier(std::size_t e) const {
  const auto ranks = static_cast<std::size_t>(trace_->num_ranks());
  const auto& vc = clocks_.at(e);
  Frontier frontier(ranks);
  const auto re = static_cast<std::size_t>(trace_->event(e).rank);
  for (std::size_t r = 0; r < ranks; ++r) {
    // Events of r in the strict past: vc[r] of them, except on e's own
    // rank where vc counts e itself.
    std::size_t count = vc[r];
    if (r == re) --count;  // exclude e
    if (count == 0) continue;
    frontier[r] = seqs()[r][count - 1];
  }
  return frontier;
}

Frontier CausalOrder::future_frontier(std::size_t e) const {
  const auto ranks = static_cast<std::size_t>(trace_->num_ranks());
  Frontier frontier(ranks);
  const auto re = static_cast<std::size_t>(trace_->event(e).rank);
  const auto threshold = static_cast<std::uint32_t>(pos_of(e) + 1);
  for (std::size_t r = 0; r < ranks; ++r) {
    const auto& seq = seqs()[r];
    if (r == re) {
      if (pos_of(e) + 1 < seq.size()) {
        frontier[r] = seq[pos_of(e) + 1];
      }
      continue;
    }
    // clock component `re` is nondecreasing along rank r's sequence:
    // binary-search the first event that has seen e.
    const auto it = std::partition_point(
        seq.begin(), seq.end(), [&](std::size_t f) {
          return clocks_[f][re] < threshold;
        });
    if (it != seq.end()) frontier[r] = *it;
  }
  return frontier;
}

std::vector<std::size_t> CausalOrder::causal_past(std::size_t e) const {
  std::vector<std::size_t> past;
  const auto frontier = past_frontier(e);
  for (std::size_t r = 0; r < frontier.size(); ++r) {
    if (!frontier[r]) continue;
    const auto& seq = seqs()[r];
    const auto last_pos = pos_of(*frontier[r]);
    for (std::size_t pos = 0; pos <= last_pos; ++pos) past.push_back(seq[pos]);
  }
  std::sort(past.begin(), past.end());
  return past;
}

std::vector<std::size_t> CausalOrder::causal_future(std::size_t e) const {
  std::vector<std::size_t> future;
  const auto frontier = future_frontier(e);
  for (std::size_t r = 0; r < frontier.size(); ++r) {
    if (!frontier[r]) continue;
    const auto& seq = seqs()[r];
    for (std::size_t pos = pos_of(*frontier[r]); pos < seq.size();
         ++pos) {
      future.push_back(seq[pos]);
    }
  }
  std::sort(future.begin(), future.end());
  return future;
}

std::vector<std::size_t> CausalOrder::concurrency_region(std::size_t e) const {
  std::vector<std::size_t> region;
  for (std::size_t f = 0; f < trace_->size(); ++f) {
    if (f != e && concurrent(e, f)) region.push_back(f);
  }
  return region;
}

Cut CausalOrder::past_frontier_cut(std::size_t e) const {
  const auto ranks = static_cast<std::size_t>(trace_->num_ranks());
  const auto& vc = clocks_.at(e);
  Cut cut;
  cut.prefix_len.assign(ranks, 0);
  const auto re = static_cast<std::size_t>(trace_->event(e).rank);
  for (std::size_t r = 0; r < ranks; ++r) {
    cut.prefix_len[r] = vc[r];
  }
  cut.prefix_len[re] = pos_of(e);  // stop right before executing e
  return cut;
}

Cut CausalOrder::future_frontier_cut(std::size_t e) const {
  const auto ranks = static_cast<std::size_t>(trace_->num_ranks());
  const auto frontier = future_frontier(e);
  Cut cut;
  cut.prefix_len.assign(ranks, 0);
  for (std::size_t r = 0; r < ranks; ++r) {
    // Ranks with no event in e's future run to completion.
    cut.prefix_len[r] =
        frontier[r] ? pos_of(*frontier[r]) : seqs()[r].size();
  }
  const auto re = static_cast<std::size_t>(trace_->event(e).rank);
  cut.prefix_len[re] = pos_of(e) + 1;  // e itself has executed
  return cut;
}

bool is_consistent(const trace::Trace& trace, const trace::MatchReport& report,
                   const trace::RankIndex& index, const Cut& cut) {
  TDBG_CHECK(cut.prefix_len.size() == static_cast<std::size_t>(trace.num_ranks()),
             "cut rank count mismatch");
  const auto& pos = index.position;
  const auto inside = [&](std::size_t e) {
    return pos[e] <
           cut.prefix_len[static_cast<std::size_t>(trace.event(e).rank)];
  };
  for (const auto& m : report.matches) {
    if (inside(m.recv_index) && !inside(m.send_index)) return false;
  }
  return true;
}

Cut cut_at_time(const trace::Trace& trace, support::TimeNs t) {
  Cut cut;
  cut.prefix_len.assign(static_cast<std::size_t>(trace.num_ranks()), 0);
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    // t_end is not monotone along a rank (nested intervals), so this
    // stays a linear sweep — but through the cursor, not a vector.
    std::size_t len = 0;
    std::size_t p = 0;
    trace.for_each_rank_event(r, [&](std::size_t, const trace::Event& e) {
      ++p;
      if (e.t_end <= t) len = p;
    });
    cut.prefix_len[static_cast<std::size_t>(r)] = len;
  }
  return cut;
}

std::size_t restrict_to_consistent(const trace::Trace& trace,
                                   const trace::MatchReport& report,
                                   const trace::RankIndex& index, Cut& cut) {
  const auto& pos = index.position;
  std::size_t dropped = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& m : report.matches) {
      const auto rr = static_cast<std::size_t>(trace.event(m.recv_index).rank);
      const auto sr = static_cast<std::size_t>(trace.event(m.send_index).rank);
      const bool recv_inside = pos[m.recv_index] < cut.prefix_len[rr];
      const bool send_inside = pos[m.send_index] < cut.prefix_len[sr];
      if (recv_inside && !send_inside) {
        dropped += cut.prefix_len[rr] - pos[m.recv_index];
        cut.prefix_len[rr] = pos[m.recv_index];
        changed = true;
      }
    }
  }
  return dropped;
}

std::vector<std::optional<std::uint64_t>> cut_thresholds(
    const trace::Trace& trace, const Cut& cut) {
  std::vector<std::optional<std::uint64_t>> thresholds(
      static_cast<std::size_t>(trace.num_ranks()));
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    const auto len = cut.prefix_len[static_cast<std::size_t>(r)];
    if (len < trace.rank_size(r)) {
      thresholds[static_cast<std::size_t>(r)] =
          trace.event(trace.rank_event(r, len)).marker;
    }
  }
  return thresholds;
}

}  // namespace tdbg::causality
