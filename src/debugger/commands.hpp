#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "debugger/debugger.hpp"

/// \file commands.hpp
/// Textual command front-end over `Debugger` — the interactive surface
/// of the p2d2 analog.  Each command maps onto one debugger operation;
/// the interpreter holds the session state a user accumulates (the
/// current stopline, whether a replay is live).
///
/// The command set mirrors the paper's workflow vocabulary: display
/// the history, set a stopline (vertical or frontier), replay, step,
/// undo, and run the §4.4 analyses.  See `help()` for the list.

namespace tdbg::dbg {

/// Outcome of one command.
struct CommandResult {
  bool ok = true;      ///< false: the command failed (message in output)
  bool quit = false;   ///< the user asked to leave
  std::string output;  ///< text to show
};

/// Stateful interpreter over one debugging session.
class CommandInterpreter {
 public:
  /// The debugger must outlive the interpreter.
  explicit CommandInterpreter(Debugger& debugger);

  /// Executes one command line.  Never throws: errors come back as
  /// `ok = false` with a message.
  CommandResult execute(std::string_view line);

  /// The command reference text.
  [[nodiscard]] static std::string help();

 private:
  CommandResult cmd_record();
  CommandResult cmd_launch(const std::vector<std::string>& args);
  CommandResult cmd_status();
  CommandResult cmd_timeline(const std::vector<std::string>& args);
  CommandResult cmd_svg(const std::vector<std::string>& args);
  CommandResult cmd_events(const std::vector<std::string>& args);
  CommandResult cmd_stopline(const std::vector<std::string>& args);
  CommandResult cmd_replay();
  CommandResult cmd_stops();
  CommandResult cmd_step(const std::vector<std::string>& args, bool over);
  CommandResult cmd_watch(const std::vector<std::string>& args);
  CommandResult cmd_mbreak(const std::vector<std::string>& args);
  CommandResult cmd_resume(const std::vector<std::string>& args);
  CommandResult cmd_print(const std::vector<std::string>& args);
  CommandResult cmd_undo();
  CommandResult cmd_continue();
  CommandResult cmd_traffic();
  CommandResult cmd_deadlock();
  CommandResult cmd_races();
  CommandResult cmd_unmatched();
  CommandResult cmd_faults();
  CommandResult cmd_health();
  CommandResult cmd_flightrec(const std::vector<std::string>& args);
  CommandResult cmd_calls(const std::vector<std::string>& args);
  CommandResult cmd_actions(const std::vector<std::string>& args);
  CommandResult cmd_groups(const std::vector<std::string>& args);
  CommandResult cmd_export(const std::vector<std::string>& args);
  CommandResult cmd_frontiers(const std::vector<std::string>& args);

  /// Formats one stop line ("rank 3 @ marker 17 (MatrSend)").
  std::string describe_stop(const replay::StopInfo& stop) const;

  /// Parses a rank argument, throwing UsageError on junk.
  mpi::Rank parse_rank(const std::string& arg) const;

  Debugger& debugger_;
  bool recorded_ = false;
  bool replay_live_ = false;
  replay::Stopline stopline_;
  bool stopline_set_ = false;
};

}  // namespace tdbg::dbg
