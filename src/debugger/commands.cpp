#include "debugger/commands.hpp"

#include <fstream>
#include <sstream>

#include "analysis/critical_path.hpp"
#include "analysis/patterns.hpp"
#include "graph/export.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "telemetry/log.hpp"
#include "telemetry/span.hpp"
#include "viz/html_view.hpp"
#include "viz/profile.hpp"

namespace tdbg::dbg {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::istringstream in{std::string(support::trim(line))};
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

CommandInterpreter::CommandInterpreter(Debugger& debugger)
    : debugger_(debugger) {}

std::string CommandInterpreter::help() {
  return R"(commands:
  record                         run the target with recording installed
  launch [marker]                run LIVE, stopping every rank at [marker]
  status                         session summary
  timeline [columns]             ASCII time-space diagram
  svg <path>                     write the SVG time-space diagram
  events <rank> [count]          list a rank's first trace events
  stopline <pct>%                vertical stopline at a fraction of the run
  stopline past <rank> <marker>  past-frontier stopline of that event
  stopline future <rank> <marker>  future-frontier stopline
  replay                         replay to the current stopline
  stops                          where the ranks are parked
  step <rank>                    one instrumented event
  next <rank>                    step over (stay at this call depth)
  watch <rank> <variable>        stop when an exposed variable changes
  mbreak <rank> <send|recv|any> <peer|any> <tag|any>   message breakpoint
  resume <rank>                  run one rank to its next armed stop
  print <rank> <variable>        show an exposed variable of a stopped rank
  undo                           back to before the last resumption
  continue                       run the replay to its end
  traffic | deadlock | races | unmatched   history analyses
  calls [rank]                   dynamic call graph summary
  actions <rank>                 action-graph view of one rank (§4.4)
  groups [strict]                ranks grouped by behavioral signature
  model <pattern...>             check a behavioral model per rank (Ariadne)
  profile                        time per construct and per rank
  critpath                       critical path through the history
  passes                         analysis-session artifact cache state
  html <path>                    interactive HTML view (zoom/pan/inspect)
  export {calls|comm|trace} {dot|vcg} <path>   write a graph file
  frontiers <rank> <marker>      past/future frontier of an event
  stats [rank|-json]             runtime/collector/replay/analysis metrics
  faults                         armed fault plan and injected-fault records
  health                         per-rank heartbeat: progress, queues, stalls
  flightrec [count]              tail of the always-on flight recorder
  help | quit
)";
}

mpi::Rank CommandInterpreter::parse_rank(const std::string& arg) const {
  const int rank = std::stoi(arg);
  TDBG_CHECK(rank >= 0 && rank < debugger_.num_ranks(), "rank out of range");
  return rank;
}

std::string CommandInterpreter::describe_stop(
    const replay::StopInfo& stop) const {
  std::ostringstream os;
  os << "rank " << stop.rank << " @ marker " << stop.marker;
  if (stop.construct != trace::kNoConstruct) {
    // Live sessions have no recorded trace yet; their construct ids
    // come from the process-wide table.
    const auto& constructs = recorded_ ? debugger_.trace().constructs()
                                       : *instr::global_constructs();
    os << " (" << constructs.info(stop.construct).name << ", "
       << trace::event_kind_name(stop.kind) << ")";
  }
  if (!stop.watch.empty()) os << " [watch: " << stop.watch << "]";
  return os.str();
}

CommandResult CommandInterpreter::execute(std::string_view line) {
  const auto args = tokenize(line);
  if (args.empty()) return {};
  const auto& cmd = args[0];
  try {
    if (cmd == "help") return {true, false, help()};
    if (cmd == "quit" || cmd == "exit") return {true, true, "bye\n"};
    if (cmd == "record") return cmd_record();
    if (cmd == "launch") return cmd_launch(args);
    if (cmd == "stats") {
      // Live registry state — works before `record` too (e.g. to see
      // what an aborted or in-progress run cost so far).
      const auto snap = obs::MetricsRegistry::global().snapshot();
      if (args.size() >= 2 && args[1] == "-json") {
        return {true, false, snap.to_json() + "\n"};
      }
      if (args.size() >= 2) {
        TDBG_CHECK(args[1][0] != '-',
                   "unknown stats flag (usage: stats [rank|-json])");
        return {true, false, snap.to_text(parse_rank(args[1]))};
      }
      const auto text = snap.to_text();
      return {true, false,
              text.empty() ? std::string("no metrics recorded") +
                                 (obs::kMetricsEnabled
                                      ? " yet\n"
                                      : " (built with TDBG_METRICS=OFF)\n")
                           : text};
    }

    // Works before `record` too: shows the armed plan (if any).
    if (cmd == "faults") return cmd_faults();

    // Telemetry surfaces — the flight recorder is always on (it sees
    // events from before/without a recording), and `health` explains
    // itself when no heartbeat has run yet.
    if (cmd == "health") return cmd_health();
    if (cmd == "flightrec") return cmd_flightrec(args);

    // Live-session commands that need no recorded trace yet.
    if (debugger_.live()) {
      if (cmd == "step") return cmd_step(args, /*over=*/false);
      if (cmd == "next") return cmd_step(args, /*over=*/true);
      if (cmd == "watch") return cmd_watch(args);
      if (cmd == "mbreak") return cmd_mbreak(args);
      if (cmd == "resume") return cmd_resume(args);
      if (cmd == "print") return cmd_print(args);
      if (cmd == "undo") return cmd_undo();
      if (cmd == "continue") return cmd_continue();
    }
    if (!recorded_) {
      return {false, false,
              "no history yet — run `record` (or `launch`) first\n"};
    }
    if (cmd == "status") return cmd_status();
    if (cmd == "timeline") return cmd_timeline(args);
    if (cmd == "svg") return cmd_svg(args);
    if (cmd == "events") return cmd_events(args);
    if (cmd == "stopline") return cmd_stopline(args);
    if (cmd == "replay") return cmd_replay();
    if (cmd == "stops") return cmd_stops();
    if (cmd == "step") return cmd_step(args, /*over=*/false);
    if (cmd == "next") return cmd_step(args, /*over=*/true);
    if (cmd == "watch") return cmd_watch(args);
    if (cmd == "mbreak") return cmd_mbreak(args);
    if (cmd == "resume") return cmd_resume(args);
    if (cmd == "print") return cmd_print(args);
    if (cmd == "undo") return cmd_undo();
    if (cmd == "continue") return cmd_continue();
    if (cmd == "traffic") return cmd_traffic();
    if (cmd == "deadlock") return cmd_deadlock();
    if (cmd == "races") return cmd_races();
    if (cmd == "unmatched") return cmd_unmatched();
    if (cmd == "calls") return cmd_calls(args);
    if (cmd == "actions") return cmd_actions(args);
    if (cmd == "groups") return cmd_groups(args);
    if (cmd == "model") {
      if (args.size() < 2) {
        return {false, false, "usage: model <pattern tokens...>\n"};
      }
      std::string pattern;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (i > 1) pattern += ' ';
        pattern += args[i];
      }
      const auto results = debugger_.session().check_model(pattern);
      std::ostringstream os;
      for (const auto& r : results) {
        os << "  rank " << r.rank << ": "
           << (r.matched ? "matches" : "DEVIATES — " + r.detail) << "\n";
      }
      return {true, false, os.str()};
    }
    if (cmd == "profile") {
      return {true, false,
              viz::profile_trace(debugger_.trace())
                  .to_string(debugger_.trace().constructs())};
    }
    if (cmd == "critpath") {
      return {true, false,
              debugger_.session().critical_path()
                  .to_string(debugger_.trace())};
    }
    if (cmd == "passes") {
      return {true, false, debugger_.session().describe()};
    }
    if (cmd == "html") {
      if (args.size() != 2) return {false, false, "usage: html <path>\n"};
      std::ofstream out(args[1]);
      if (!out) return {false, false, "cannot write " + args[1] + "\n"};
      viz::HtmlOptions html_options;
      const auto snap = obs::MetricsRegistry::global().snapshot();
      html_options.metrics = &snap;
      const auto spans = telemetry::SpanCollector::global().snapshot();
      html_options.self_spans = &spans;
      html_options.diagram.matches = &debugger_.session().match_report();
      out << viz::to_html(debugger_.trace(), html_options);
      return {true, false, "wrote " + args[1] + "\n"};
    }
    if (cmd == "export") return cmd_export(args);
    if (cmd == "frontiers") return cmd_frontiers(args);
    return {false, false, "unknown command: " + cmd + " (try `help`)\n"};
  } catch (const std::exception& e) {
    return {false, false, std::string("error: ") + e.what() + "\n"};
  }
}

CommandResult CommandInterpreter::cmd_record() {
  if (recorded_) return {false, false, "already recorded\n"};
  const auto& result = debugger_.record();
  recorded_ = true;
  std::ostringstream os;
  os << "recorded: "
     << (result.completed
             ? "completed"
             : (result.deadlocked ? "DEADLOCKED" : "failed"))
     << ", " << debugger_.trace().size() << " trace records across "
     << debugger_.num_ranks() << " ranks\n";
  if (!result.abort_detail.empty()) os << result.abort_detail << "\n";
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_launch(
    const std::vector<std::string>& args) {
  if (recorded_ || debugger_.live()) {
    return {false, false, "session already has a history\n"};
  }
  replay::Stopline line;
  line.thresholds.assign(static_cast<std::size_t>(debugger_.num_ranks()),
                         std::nullopt);
  if (args.size() > 1) {
    const auto marker = std::stoull(args[1]);
    for (auto& t : line.thresholds) t = marker;
  }
  const auto stops = debugger_.launch(line);
  replay_live_ = true;
  std::ostringstream os;
  os << "launched live; " << stops.size() << " rank(s) parked:\n";
  for (const auto& stop : stops) os << "  " << describe_stop(stop) << "\n";
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_status() {
  std::ostringstream os;
  const auto& result = debugger_.run_result();
  os << "target ranks : " << debugger_.num_ranks() << "\n";
  os << "recorded run : "
     << (result.completed ? "completed"
                          : (result.deadlocked ? "deadlocked" : "failed"))
     << "\n";
  os << "trace records: " << debugger_.trace().size() << "\n";
  os << "replay       : " << (replay_live_ ? "live" : "none") << "\n";
  os << "stopline     : " << (stopline_set_ ? "set" : "unset") << "\n";
  os << "undo depth   : " << debugger_.undo_depth() << "\n";
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_timeline(
    const std::vector<std::string>& args) {
  const int columns = args.size() > 1 ? std::stoi(args[1]) : 100;
  return {true, false, debugger_.diagram().to_ascii(columns)};
}

CommandResult CommandInterpreter::cmd_svg(
    const std::vector<std::string>& args) {
  if (args.size() != 2) return {false, false, "usage: svg <path>\n"};
  std::ofstream out(args[1]);
  if (!out) return {false, false, "cannot write " + args[1] + "\n"};
  out << debugger_.diagram().to_svg();
  return {true, false, "wrote " + args[1] + "\n"};
}

CommandResult CommandInterpreter::cmd_events(
    const std::vector<std::string>& args) {
  if (args.size() < 2) return {false, false, "usage: events <rank> [count]\n"};
  const auto rank = parse_rank(args[1]);
  const std::size_t count =
      args.size() > 2 ? std::stoul(args[2]) : std::size_t{20};
  const auto& trace = debugger_.trace();
  std::ostringstream os;
  // Point queries through the store: only the first `count` events of
  // the rank are touched, not the whole per-rank index.
  const std::size_t total = trace.rank_size(rank);
  for (std::size_t pos = 0; pos < total; ++pos) {
    if (pos == count) {
      os << "  ...\n";
      break;
    }
    const auto& e = trace.event(trace.rank_event(rank, pos));
    os << "  marker " << e.marker << "  "
       << trace::event_kind_name(e.kind) << "  "
       << (e.construct == trace::kNoConstruct
               ? "?"
               : trace.constructs().info(e.construct).name);
    if (e.is_message()) {
      os << "  " << (e.kind == trace::EventKind::kSend ? "-> " : "<- ")
         << "rank " << e.peer << " tag " << e.tag;
    }
    os << "\n";
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_stopline(
    const std::vector<std::string>& args) {
  if (args.size() == 2 && args[1].back() == '%') {
    const double pct = std::stod(args[1].substr(0, args[1].size() - 1));
    const auto& trace = debugger_.trace();
    const auto t = trace.t_min() +
                   static_cast<support::TimeNs>(
                       static_cast<double>(trace.t_max() - trace.t_min()) *
                       pct / 100.0);
    stopline_ = debugger_.stopline_at(t);
    stopline_set_ = true;
    int armed = 0;
    for (const auto& th : stopline_.thresholds) armed += th.has_value();
    return {true, false,
            "vertical stopline at " + args[1] + ": " + std::to_string(armed) +
                " ranks get thresholds\n"};
  }
  if (args.size() == 4 && (args[1] == "past" || args[1] == "future")) {
    const auto rank = parse_rank(args[2]);
    const auto marker = std::stoull(args[3]);
    const auto event = debugger_.trace().find_marker(rank, marker);
    if (!event) return {false, false, "no such event\n"};
    stopline_ = args[1] == "past"
                    ? debugger_.stopline_past_frontier(*event)
                    : debugger_.stopline_future_frontier(*event);
    stopline_set_ = true;
    return {true, false, args[1] + "-frontier stopline set\n"};
  }
  return {false, false,
          "usage: stopline <pct>% | stopline past|future <rank> <marker>\n"};
}

CommandResult CommandInterpreter::cmd_replay() {
  if (!stopline_set_) return {false, false, "set a stopline first\n"};
  const auto stops = debugger_.replay_to(stopline_);
  replay_live_ = true;
  std::ostringstream os;
  os << "replayed; " << stops.size() << " rank(s) parked:\n";
  for (const auto& stop : stops) os << "  " << describe_stop(stop) << "\n";
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_stops() {
  if (!replay_live_) return {false, false, "no live replay\n"};
  std::ostringstream os;
  for (mpi::Rank r = 0; r < debugger_.num_ranks(); ++r) {
    // The session's counters show where every rank is, parked or not.
    auto* session = debugger_.replay_session();
    os << "  rank " << r << ": marker " << session->counter(r) << "\n";
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_step(
    const std::vector<std::string>& args, bool over) {
  if (!replay_live_) return {false, false, "no live replay\n"};
  if (args.size() != 2) return {false, false, "usage: step|next <rank>\n"};
  const auto rank = parse_rank(args[1]);
  const auto stop =
      over ? debugger_.step_over(rank) : debugger_.step(rank);
  if (!stop) {
    return {true, false,
            "rank " + args[1] + " finished or is waiting for a message\n"};
  }
  return {true, false, "  " + describe_stop(*stop) + "\n"};
}

CommandResult CommandInterpreter::cmd_watch(
    const std::vector<std::string>& args) {
  if (!replay_live_) return {false, false, "no live replay\n"};
  if (args.size() != 3) return {false, false, "usage: watch <rank> <var>\n"};
  debugger_.watch(parse_rank(args[1]), args[2]);
  return {true, false, "watching `" + args[2] + "` on rank " + args[1] + "\n"};
}

CommandResult CommandInterpreter::cmd_mbreak(
    const std::vector<std::string>& args) {
  if (!replay_live_) return {false, false, "no live replay\n"};
  if (args.size() != 5) {
    return {false, false,
            "usage: mbreak <rank> <send|recv|any> <peer|any> <tag|any>\n"};
  }
  replay::MessageBreak spec;
  if (args[2] == "send") {
    spec.on_recv = false;
  } else if (args[2] == "recv") {
    spec.on_send = false;
  } else if (args[2] != "any") {
    return {false, false, "direction must be send, recv, or any\n"};
  }
  spec.peer = args[3] == "any" ? mpi::kAnySource : parse_rank(args[3]);
  spec.tag = args[4] == "any" ? mpi::kAnyTag : std::stoi(args[4]);
  debugger_.break_on_message(parse_rank(args[1]), spec);
  return {true, false, "message breakpoint armed on rank " + args[1] + "\n"};
}

CommandResult CommandInterpreter::cmd_resume(
    const std::vector<std::string>& args) {
  if (!replay_live_) return {false, false, "no live replay\n"};
  if (args.size() != 2) return {false, false, "usage: resume <rank>\n"};
  const auto stop = debugger_.continue_rank(parse_rank(args[1]));
  if (!stop) {
    return {true, false,
            "rank " + args[1] + " finished or is waiting for a message\n"};
  }
  return {true, false, "  " + describe_stop(*stop) + "\n"};
}

CommandResult CommandInterpreter::cmd_print(
    const std::vector<std::string>& args) {
  if (!replay_live_) return {false, false, "no live replay\n"};
  if (args.size() != 3) return {false, false, "usage: print <rank> <var>\n"};
  const auto rank = parse_rank(args[1]);
  auto* session = debugger_.replay_session();
  const auto view = session->variable(rank, args[2]);
  if (view.address == nullptr) {
    return {false, false,
            "rank " + args[1] + " exposed no variable `" + args[2] + "`\n"};
  }
  if (!debugger_.replay_session()->counter(rank)) {
    return {false, false, "rank has not started yet\n"};
  }
  // Reading is safe while the rank is parked at a control point.
  std::ostringstream os;
  os << args[2] << " (" << view.bytes << " bytes) = ";
  if (view.bytes == sizeof(std::int32_t)) {
    std::int32_t v;
    std::memcpy(&v, view.address, sizeof v);
    os << v;
  } else if (view.bytes == sizeof(std::int64_t)) {
    std::int64_t v;
    std::memcpy(&v, view.address, sizeof v);
    os << v << " (as i64)";
  } else {
    os << "0x";
    const auto* bytes = static_cast<const unsigned char*>(view.address);
    for (std::size_t i = 0; i < view.bytes && i < 16; ++i) {
      char hex[4];
      std::snprintf(hex, sizeof hex, "%02x", bytes[i]);
      os << hex;
    }
  }
  os << "\n";
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_undo() {
  const auto stops = debugger_.undo();
  if (!stops) return {false, false, "nothing to undo\n"};
  replay_live_ = true;
  std::ostringstream os;
  os << "undone; " << stops->size() << " rank(s) parked:\n";
  for (const auto& stop : *stops) os << "  " << describe_stop(stop) << "\n";
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_continue() {
  if (!replay_live_) return {false, false, "no live replay\n"};
  const bool was_live = debugger_.live();
  const auto result = debugger_.end_replay();
  replay_live_ = false;
  if (was_live) recorded_ = true;  // the live run's history is captured
  std::ostringstream os;
  os << "replay ended: ";
  if (result) {
    os << (result->completed
               ? "completed"
               : (result->deadlocked ? "deadlocked (as recorded)" : "failed"));
  }
  os << "\n";
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_traffic() {
  return {true, false, debugger_.traffic().to_string()};
}

CommandResult CommandInterpreter::cmd_deadlock() {
  return {true, false, debugger_.deadlock_report().description + "\n"};
}

CommandResult CommandInterpreter::cmd_races() {
  const auto report = debugger_.races();
  std::ostringstream os;
  if (!report.racy()) {
    os << "no message races\n";
  } else {
    os << report.races.size() << " racy wildcard receive(s)\n";
    for (const auto& race : report.races) {
      const auto& recv = debugger_.trace().event(race.recv_index);
      os << "  rank " << recv.rank << " marker " << recv.marker << ": "
         << race.candidates.size() << " alternative sender(s)\n";
    }
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_faults() {
  std::ostringstream os;
  if (!debugger_.fault_plan()) {
    os << "no fault plan armed\n";
    return {true, false, os.str()};
  }
  if (const auto* engine = debugger_.fault_engine(); engine != nullptr) {
    os << engine->describe();
  } else {
    os << "armed (not yet recorded): " << debugger_.fault_plan()->describe();
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_health() {
  const auto* monitor = debugger_.health();
  if (monitor == nullptr) {
    return {true, false,
            "no health heartbeat yet — `record` runs one alongside the "
            "target\n"};
  }
  return {true, false, monitor->report()};
}

CommandResult CommandInterpreter::cmd_flightrec(
    const std::vector<std::string>& args) {
  std::size_t count = 32;
  if (args.size() > 1) count = std::stoul(args[1]);
  auto& flight = telemetry::FlightRecorder::global();
  std::ostringstream os;
  os << "flight recorder: " << flight.appended() << " record(s) appended";
  const auto text = flight.dump_text(count);
  if (text.empty()) {
    os << "\n";
  } else {
    os << "; last " << (count == 0 ? std::string("records")
                                   : std::to_string(count)) << ":\n" << text;
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_unmatched() {
  const auto& report = debugger_.session().match_report();
  std::ostringstream os;
  os << report.unmatched_sends.size() << " unmatched send(s), "
     << report.unmatched_recvs.size() << " orphan receive(s)\n";
  for (std::size_t i : report.unmatched_sends) {
    const auto& e = debugger_.trace().event(i);
    os << "  send rank " << e.rank << " -> rank " << e.peer << " tag "
       << e.tag << " was never received\n";
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_calls(
    const std::vector<std::string>& args) {
  std::optional<mpi::Rank> rank;
  if (args.size() > 1) rank = parse_rank(args[1]);
  const auto& cg = debugger_.call_graph(rank);
  std::ostringstream os;
  os << cg.function_count() << " functions, " << cg.edges().size()
     << " caller->callee edges\n";
  for (const auto& e : cg.edges()) {
    const auto name = [&](trace::ConstructId id) {
      return id == trace::kNoConstruct
                 ? std::string("<root>")
                 : debugger_.trace().constructs().info(id).name;
    };
    os << "  " << name(e.caller) << " -> " << name(e.callee) << "  x"
       << e.calls << "\n";
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_actions(
    const std::vector<std::string>& args) {
  if (args.size() != 2) return {false, false, "usage: actions <rank>\n"};
  const auto rank = parse_rank(args[1]);
  const auto& ag = debugger_.action_graph();
  std::ostringstream os;
  for (const auto& a : ag.actions(rank)) {
    os << "  " << trace::event_kind_name(a.kind) << " "
       << (a.construct == trace::kNoConstruct
               ? "?"
               : debugger_.trace().constructs().info(a.construct).name);
    if (a.count > 1) os << " x" << a.count;
    os << "  [markers " << a.marker_lo << ".." << a.marker_hi << "]\n";
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_groups(
    const std::vector<std::string>& args) {
  const auto level = args.size() > 1 && args[1] == "strict"
                         ? GroupingLevel::kStrict
                         : GroupingLevel::kShape;
  const auto groups = debugger_.process_groups(level);
  std::ostringstream os;
  os << groups.size() << " behavioral group(s): "
     << describe_groups(groups) << "\n";
  for (const auto& g : groups) {
    os << "  " << describe_groups({g}) << ": "
       << (g.signature.size() > 70 ? g.signature.substr(0, 70) + "..."
                                   : g.signature)
       << "\n";
  }
  return {true, false, os.str()};
}

CommandResult CommandInterpreter::cmd_export(
    const std::vector<std::string>& args) {
  if (args.size() != 4) {
    return {false, false,
            "usage: export {calls|comm|trace} {dot|vcg} <path>\n"};
  }
  graph::ExportGraph exported;
  if (args[1] == "calls") {
    exported = debugger_.call_graph(std::nullopt)
                   .to_export(debugger_.trace().constructs());
  } else if (args[1] == "comm") {
    exported = debugger_.comm_graph().to_export();
  } else if (args[1] == "trace") {
    exported = debugger_.trace_graph().to_export(
        debugger_.trace().constructs());
  } else {
    return {false, false, "unknown graph: " + args[1] + "\n"};
  }
  std::ofstream out(args[3]);
  if (!out) return {false, false, "cannot write " + args[3] + "\n"};
  out << (args[2] == "vcg" ? graph::to_vcg(exported)
                           : graph::to_dot(exported));
  return {true, false, "wrote " + args[3] + "\n"};
}

CommandResult CommandInterpreter::cmd_frontiers(
    const std::vector<std::string>& args) {
  if (args.size() != 3) {
    return {false, false, "usage: frontiers <rank> <marker>\n"};
  }
  const auto rank = parse_rank(args[1]);
  const auto marker = std::stoull(args[2]);
  const auto event = debugger_.trace().find_marker(rank, marker);
  if (!event) return {false, false, "no such event\n"};
  const auto& order = debugger_.order();
  const auto past = order.past_frontier(*event);
  const auto future = order.future_frontier(*event);
  std::ostringstream os;
  os << "event: rank " << rank << " marker " << marker << "\n";
  for (mpi::Rank r = 0; r < debugger_.num_ranks(); ++r) {
    os << "  rank " << r << ": past ";
    const auto& pf = past[static_cast<std::size_t>(r)];
    const auto& ff = future[static_cast<std::size_t>(r)];
    if (pf) {
      os << "marker " << debugger_.trace().event(*pf).marker;
    } else {
      os << "-";
    }
    os << ", future ";
    if (ff) {
      os << "marker " << debugger_.trace().event(*ff).marker;
    } else {
      os << "-";
    }
    os << "\n";
  }
  os << "concurrency region: " << order.concurrency_region(*event).size()
     << " events\n";
  return {true, false, os.str()};
}

}  // namespace tdbg::dbg
