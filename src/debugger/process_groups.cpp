#include "debugger/process_groups.hpp"

#include <map>
#include <sstream>

namespace tdbg::dbg {

namespace {

std::string signature_of(const trace::Trace& trace,
                         const graph::ActionGraph& actions, mpi::Rank rank,
                         GroupingLevel level) {
  std::ostringstream os;
  for (const auto& a : actions.actions(rank)) {
    os << trace::event_kind_name(a.kind) << ':';
    os << (a.construct == trace::kNoConstruct
               ? std::string("?")
               : trace.constructs().info(a.construct).name);
    if (level == GroupingLevel::kStrict) os << 'x' << a.count;
    os << ' ';
  }
  return os.str();
}

}  // namespace

std::vector<ProcessGroup> group_processes(const trace::Trace& trace,
                                          const graph::ActionGraph& actions,
                                          GroupingLevel level) {
  // signature -> group, keyed so first-seen rank order decides output
  // order.
  std::map<std::string, std::size_t> index;
  std::vector<ProcessGroup> groups;
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    auto sig = signature_of(trace, actions, r, level);
    const auto it = index.find(sig);
    if (it == index.end()) {
      index.emplace(sig, groups.size());
      groups.push_back(ProcessGroup{{r}, std::move(sig)});
    } else {
      groups[it->second].ranks.push_back(r);
    }
  }
  return groups;
}

std::string describe_groups(const std::vector<ProcessGroup>& groups) {
  std::ostringstream os;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (g != 0) os << ' ';
    os << '{';
    const auto& ranks = groups[g].ranks;
    // Collapse consecutive runs: {1-6}.
    std::size_t i = 0;
    bool first = true;
    while (i < ranks.size()) {
      std::size_t j = i;
      while (j + 1 < ranks.size() && ranks[j + 1] == ranks[j] + 1) ++j;
      if (!first) os << ',';
      first = false;
      if (j == i) {
        os << ranks[i];
      } else {
        os << ranks[i] << '-' << ranks[j];
      }
      i = j + 1;
    }
    os << '}';
  }
  return os.str();
}

}  // namespace tdbg::dbg
