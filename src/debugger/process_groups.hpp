#pragma once

#include <string>
#include <vector>

#include "graph/action_graph.hpp"
#include "trace/trace.hpp"

/// \file process_groups.hpp
/// Behavioral process grouping — the p2d2 scalability idea the host
/// debugger is built around (Hood [5]: debugging programs "distributed
/// across a large number of processors" by treating equivalently-
/// behaving processes as one).
///
/// Ranks are grouped by a behavioral signature derived from the trace:
/// the sequence of (kind, construct) actions the rank performed, with
/// run-lengths dropped so that e.g. workers that processed different
/// *numbers* of identical tasks still group together at the coarse
/// level, and kept at the strict level.  In the paper's Strassen
/// example the strict grouping is {master} {workers 1..7}; in the
/// buggy variant rank 7's truncated history splits it from its peers —
/// the grouping *is* the "process 7 is not behaving like processes
/// 1-6" observation of Fig. 6.

namespace tdbg::dbg {

/// How precise the signature is.
enum class GroupingLevel : std::uint8_t {
  kStrict,  ///< exact action sequence including repetition counts
  kShape,   ///< action sequence with repetition counts dropped
};

/// One behavioral equivalence class.
struct ProcessGroup {
  std::vector<mpi::Rank> ranks;  ///< members, ascending
  std::string signature;         ///< human-readable behavioral signature
};

/// Groups the trace's ranks by behavioral signature.  Groups are
/// ordered by their lowest member rank.  `actions` is the cached
/// action graph from the trace's `analysis::Session`.
std::vector<ProcessGroup> group_processes(
    const trace::Trace& trace, const graph::ActionGraph& actions,
    GroupingLevel level = GroupingLevel::kShape);

/// One-line rendering ("{0} {1-6} {7}").
std::string describe_groups(const std::vector<ProcessGroup>& groups);

}  // namespace tdbg::dbg
