#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "analysis/deadlock.hpp"
#include "analysis/races.hpp"
#include "analysis/session.hpp"
#include "analysis/traffic.hpp"
#include "debugger/process_groups.hpp"
#include "fault/engine.hpp"
#include "fault/plan.hpp"
#include "graph/action_graph.hpp"
#include "causality/causal_order.hpp"
#include "graph/call_graph.hpp"
#include "graph/comm_graph.hpp"
#include "graph/trace_graph.hpp"
#include "replay/record.hpp"
#include "replay/replay.hpp"
#include "replay/stopline.hpp"
#include "viz/timeline.hpp"

/// \file debugger.hpp
/// The trace-driven debugger core — the p2d2 analog.
///
/// One `Debugger` owns a debugging session over one target program:
///
///   1. `record()` runs the program with full instrumentation,
///      capturing the trace and the message-match log (paper §2).
///   2. The history surfaces — `diagram()`, `call_graph()`,
///      `comm_graph()`, `traffic()`, `deadlock_report()` — give the
///      "big picture" (§3, §4.4).
///   3. `stopline_*()` + `replay_to()` re-execute under replay control
///      and park every rank at a consistent breakpoint set (§4.1).
///   4. `step()` / `step_over()` move one rank through its
///      instrumented events (the Fig. 7 bug hunt).
///   5. `undo()` rolls back to the state before the most recent
///      resumption by replaying to the recorded markers (§4.2).

namespace tdbg::dbg {

/// Debugger configuration.
struct DebuggerOptions {
  /// Collection configuration for the recorded run.
  instr::SessionOptions session;
};

/// A trace-driven debugging session.
class Debugger {
 public:
  /// \param num_ranks world size of the target
  /// \param body      the target program
  Debugger(int num_ranks, mpi::RankBody body, DebuggerOptions options = {});

  /// Post-mortem session over an existing history (e.g. loaded with
  /// `trace::read_trace`): every display and analysis works, but there
  /// is no target to re-execute — `record`/`replay_to`/`undo` are
  /// unavailable (`can_replay()` is false).  This is the AIMS-style
  /// post-mortem workflow the paper starts from (§2.1).
  static Debugger from_trace(trace::Trace trace);

  /// True when the session has a target program to (re)execute.
  [[nodiscard]] bool can_replay() const { return static_cast<bool>(body_); }

  ~Debugger();

  Debugger(const Debugger&) = delete;
  Debugger& operator=(const Debugger&) = delete;
  Debugger(Debugger&&) = default;
  Debugger& operator=(Debugger&&) = default;

  // --- Phase 1: history acquisition ------------------------------------

  /// Runs the target to completion (or crash/deadlock) with recording
  /// installed.  Must be called before anything else.
  const mpi::RunResult& record();

  /// Arms fault injection: `record()` compiles the plan into a fresh
  /// `fault::FaultEngine` and runs the target under it, so the trace
  /// carries `kFaultInjected` events alongside the history they
  /// perturbed.  Must be called before `record()`/`launch()`.
  void set_fault_plan(fault::FaultPlan plan);

  /// The engine of the faulted recorded run (its injection counts and
  /// records), or null when no fault plan is armed / recorded yet.
  [[nodiscard]] const fault::FaultEngine* fault_engine() const {
    return fault_engine_.get();
  }

  /// The armed fault plan, if any.
  [[nodiscard]] const std::optional<fault::FaultPlan>& fault_plan() const {
    return fault_plan_;
  }

  /// The recorded execution history.
  [[nodiscard]] const trace::Trace& trace() const;

  /// The analysis session over the recorded history — the shared
  /// artifact cache every display and analysis command pulls from.
  /// Created lazily on first use; replaced when a live run finishes
  /// and the history changes.
  analysis::Session& session() const;

  /// The happens-before structure (shorthand for
  /// `session().causal_order()`).
  const causality::CausalOrder& order();

  /// The recorded run's outcome.
  [[nodiscard]] const mpi::RunResult& run_result() const;

  /// The recording's health heartbeat (stopped; last snapshot and the
  /// accumulated series stay readable), or null before `record()` /
  /// when monitoring was disabled.  Powers the `health` command.
  [[nodiscard]] const telemetry::HealthMonitor* health() const {
    return recorded_run_.health.get();
  }

  // --- Phase 2: history displays & analysis ----------------------------

  /// Time-space diagram of the recorded history.
  [[nodiscard]] viz::TimeSpaceDiagram diagram(
      viz::DiagramOptions options = {}) const;

  /// Dynamic call graph (merged, or per rank).
  [[nodiscard]] const graph::CallGraph& call_graph(
      std::optional<mpi::Rank> rank = std::nullopt) const;

  /// Communication graph (Fig. 4).
  [[nodiscard]] const graph::CommGraph& comm_graph() const;

  /// Trace graph with the given dissemination limit (§4.3).
  [[nodiscard]] const graph::TraceGraph& trace_graph(
      std::size_t merge_limit = 16) const;

  /// Action graph — the §4.4 coarse view (runs of same-construct
  /// operations collapsed into actions).
  [[nodiscard]] const graph::ActionGraph& action_graph() const;

  /// Behavioral process groups (the p2d2 scalability view): ranks with
  /// equivalent histories collapse into one group.
  [[nodiscard]] std::vector<ProcessGroup> process_groups(
      GroupingLevel level = GroupingLevel::kShape) const;

  /// Traffic statistics and irregularities (§4.4/§6).
  [[nodiscard]] const analysis::TrafficReport& traffic() const;

  /// Deadlock explanation of the recorded run's final wait states.
  [[nodiscard]] analysis::DeadlockReport deadlock_report() const;

  /// Message races among wildcard receives (§4.4).
  const analysis::RaceReport& races();

  // --- Stoplines ---------------------------------------------------------

  /// Vertical stopline at display time `t` (§4.1).
  replay::Stopline stopline_at(support::TimeNs t) const;

  /// Past-frontier stopline of a selected event.
  replay::Stopline stopline_past_frontier(std::size_t event);

  /// Future-frontier stopline of a selected event.
  replay::Stopline stopline_future_frontier(std::size_t event);

  // --- Phase 0 (alternative): live debugging ------------------------------

  /// Launches the target **live** under breakpoint control — p2d2's
  /// primary mode: the *first* execution stops at `stopline` while it
  /// is simultaneously being recorded.  Stepping, watching, further
  /// stoplines and even `undo` (replaying the partial log) all work on
  /// the live run; `end_replay()` then captures the full history and
  /// match log, after which the usual record-based features
  /// (`trace()`, analyses, `replay_to`) are available.
  ///
  /// Mutually exclusive with `record()` — a session either records
  /// first or launches live.
  std::vector<replay::StopInfo> launch(const replay::Stopline& stopline);

  /// True while a live (first-execution) run is active.
  [[nodiscard]] bool live() const { return live_; }

  /// True once a history exists (after `record()`, a finished live
  /// run, or `from_trace`).
  [[nodiscard]] bool recorded() const { return recorded_; }

  // --- Phase 3: controlled replay -----------------------------------------

  /// Replays the target to `stopline` (starting a fresh controlled
  /// re-execution if none is active).  Records the pre-resume markers
  /// for `undo`.  Returns the stop states.
  std::vector<replay::StopInfo> replay_to(const replay::Stopline& stopline);

  /// Steps `rank` to its next instrumented event.
  std::optional<replay::StopInfo> step(mpi::Rank rank);

  /// Steps `rank` over the current construct: runs until control
  /// returns to at most the current call depth.
  std::optional<replay::StopInfo> step_over(mpi::Rank rank);

  /// Arms a watchpoint on a variable the target exposed with
  /// `instr::expose_variable`: `rank` stops at the first instrumented
  /// event after the variable's bytes change (StopInfo::watch carries
  /// the name).  Requires an active replay; cleared by the stopline's
  /// disarm or `end_replay`.
  void watch(mpi::Rank rank, const std::string& variable);

  /// Arms a message breakpoint: `rank` stops when it is about to
  /// perform a matching send/receive.  Requires an active replay.
  void break_on_message(mpi::Rank rank, const replay::MessageBreak& spec);

  /// Resumes one stopped rank until its next armed stop (watchpoint /
  /// message / construct breakpoint); nullopt when it finishes or
  /// blocks on a parked peer instead.  Records markers for undo.
  std::optional<replay::StopInfo> continue_rank(mpi::Rank rank);

  /// Rolls back to the marker set recorded before the most recent
  /// resumption (§4.2): discards the active replay and replays afresh
  /// to those markers.  Returns the stop states, or nullopt when
  /// there is nothing to undo.
  std::optional<std::vector<replay::StopInfo>> undo();

  /// Depth of the undo stack.
  [[nodiscard]] std::size_t undo_depth() const { return undo_stack_.size(); }

  /// Ends the active replay (resumes everything, waits for exit).
  /// Returns the replay's outcome, or nullopt when no replay is
  /// active.
  std::optional<mpi::RunResult> end_replay();

  /// The active replay's instrumentation session (marker counters,
  /// UserMonitor records) — for inspecting a stopped world.
  [[nodiscard]] instr::Session* replay_session();

  [[nodiscard]] int num_ranks() const { return num_ranks_; }

 private:
  /// Markers where every rank currently sits (stopped ranks: their
  /// stop marker; others: their current counter).
  replay::Stopline current_markers() const;

  int num_ranks_;
  mpi::RankBody body_;
  DebuggerOptions options_;

  bool recorded_ = false;
  bool live_ = false;
  std::optional<fault::FaultPlan> fault_plan_;
  std::unique_ptr<fault::FaultEngine> fault_engine_;
  replay::RecordedRun recorded_run_;
  /// Lazily-created shared artifact cache over `recorded_run_.trace`
  /// (pointer, not optional: `Session` pins a mutex, the debugger must
  /// stay movable).  Reset when the history is replaced.
  mutable std::unique_ptr<analysis::Session> session_;

  std::unique_ptr<replay::ReplaySession> active_;
  std::vector<replay::Stopline> undo_stack_;
};

}  // namespace tdbg::dbg
