#include "debugger/debugger.hpp"

#include <cstring>

#include "support/error.hpp"
#include "telemetry/span.hpp"

namespace tdbg::dbg {

Debugger::Debugger(int num_ranks, mpi::RankBody body, DebuggerOptions options)
    : num_ranks_(num_ranks), body_(std::move(body)),
      options_(std::move(options)) {
  TDBG_CHECK(num_ranks > 0, "debugger needs at least one rank");
}

Debugger::~Debugger() = default;

Debugger Debugger::from_trace(trace::Trace trace) {
  TDBG_CHECK(trace.num_ranks() > 0, "post-mortem trace is empty");
  Debugger dbg(trace.num_ranks(), mpi::RankBody{},
               DebuggerOptions{});
  dbg.recorded_ = true;
  dbg.recorded_run_.trace = std::move(trace);
  dbg.recorded_run_.result.completed = true;  // outcome unknown; assume done
  return dbg;
}

std::vector<replay::StopInfo> Debugger::launch(
    const replay::Stopline& stopline) {
  TDBG_CHECK(!recorded_ && !live_, "session already has a history");
  TDBG_CHECK(can_replay(), "post-mortem session has no target to run");
  live_ = true;
  telemetry::Span span("debugger.replay");
  active_ = std::make_unique<replay::ReplaySession>(
      num_ranks_, body_, replay::MatchLog{}, options_.session,
      /*collect_trace=*/true, /*record_matches=*/true);
  return active_->run_to(stopline);
}

void Debugger::set_fault_plan(fault::FaultPlan plan) {
  TDBG_CHECK(!recorded_ && !live_,
             "fault plan must be armed before record()/launch()");
  fault_plan_ = std::move(plan);
}

const mpi::RunResult& Debugger::record() {
  TDBG_CHECK(!recorded_ && !live_, "record() may only run once per session");
  TDBG_CHECK(can_replay(), "post-mortem session has no target to run");
  replay::RecordOptions rec_options;
  rec_options.session = options_.session;
  if (fault_plan_) {
    fault_engine_ =
        std::make_unique<fault::FaultEngine>(*fault_plan_, num_ranks_);
    rec_options.fault_engine = fault_engine_.get();
  }
  recorded_run_ = replay::record(num_ranks_, body_, rec_options);
  recorded_ = true;
  return recorded_run_.result;
}

const trace::Trace& Debugger::trace() const {
  TDBG_CHECK(recorded_, "call record() first");
  return recorded_run_.trace;
}

analysis::Session& Debugger::session() const {
  TDBG_CHECK(recorded_, "call record() first");
  if (!session_) {
    telemetry::Span span("debugger.analysis");
    session_ = std::make_unique<analysis::Session>(recorded_run_.trace);
  }
  return *session_;
}

const causality::CausalOrder& Debugger::order() {
  return session().causal_order();
}

const mpi::RunResult& Debugger::run_result() const {
  TDBG_CHECK(recorded_, "call record() first");
  return recorded_run_.result;
}

viz::TimeSpaceDiagram Debugger::diagram(viz::DiagramOptions options) const {
  // Share the session's matching: the diagram draws the message lines
  // without running its own pairing.
  if (options.matches == nullptr) options.matches = &session().match_report();
  return viz::TimeSpaceDiagram(trace(), options);
}

const graph::CallGraph& Debugger::call_graph(
    std::optional<mpi::Rank> rank) const {
  return session().call_graph(rank);
}

const graph::CommGraph& Debugger::comm_graph() const {
  return session().comm_graph();
}

const graph::TraceGraph& Debugger::trace_graph(std::size_t merge_limit) const {
  return session().trace_graph(merge_limit);
}

const graph::ActionGraph& Debugger::action_graph() const {
  return session().action_graph();
}

std::vector<ProcessGroup> Debugger::process_groups(
    GroupingLevel level) const {
  return group_processes(trace(), session().action_graph(), level);
}

const analysis::TrafficReport& Debugger::traffic() const {
  return session().traffic();
}

analysis::DeadlockReport Debugger::deadlock_report() const {
  TDBG_CHECK(recorded_, "call record() first");
  return analysis::explain_deadlock(recorded_run_.result.final_waits);
}

const analysis::RaceReport& Debugger::races() { return session().races(); }

replay::Stopline Debugger::stopline_at(support::TimeNs t) const {
  return replay::stopline_at_time(trace(), session().match_report(),
                                  session().rank_index(), t);
}

replay::Stopline Debugger::stopline_past_frontier(std::size_t event) {
  return replay::stopline_past_frontier(order(), event);
}

replay::Stopline Debugger::stopline_future_frontier(std::size_t event) {
  return replay::stopline_future_frontier(order(), event);
}

replay::Stopline Debugger::current_markers() const {
  replay::Stopline line;
  line.thresholds.resize(static_cast<std::size_t>(num_ranks_));
  if (active_ == nullptr) return line;
  for (mpi::Rank r = 0; r < num_ranks_; ++r) {
    if (const auto stop = active_->control().stopped_at(r)) {
      line.thresholds[static_cast<std::size_t>(r)] = stop->marker;
    }
    // Finished or free-running ranks get no threshold: an undo to
    // this state lets them run to completion again.
  }
  return line;
}

std::vector<replay::StopInfo> Debugger::replay_to(
    const replay::Stopline& stopline) {
  TDBG_CHECK(recorded_ || live_, "call record() or launch() first");
  TDBG_CHECK(can_replay(), "post-mortem session cannot re-execute");
  telemetry::Span span("debugger.replay");
  if (active_ != nullptr) {
    // Resuming an existing replay: remember where we are for undo
    // (§4.2 — "every time a target process stops, p2d2 records its
    // execution marker").
    undo_stack_.push_back(current_markers());
  } else {
    active_ = std::make_unique<replay::ReplaySession>(
        num_ranks_, body_, recorded_run_.log, options_.session);
  }
  return active_->run_to(stopline);
}

std::optional<replay::StopInfo> Debugger::step(mpi::Rank rank) {
  TDBG_CHECK(active_ != nullptr, "no active replay");
  undo_stack_.push_back(current_markers());
  return active_->step(rank);
}

std::optional<replay::StopInfo> Debugger::step_over(mpi::Rank rank) {
  TDBG_CHECK(active_ != nullptr, "no active replay");
  const auto stop = active_->control().stopped_at(rank);
  TDBG_CHECK(stop.has_value(), "step_over needs a stopped rank");
  undo_stack_.push_back(current_markers());
  return active_->step_to_depth(rank, stop->depth);
}

void Debugger::watch(mpi::Rank rank, const std::string& variable) {
  TDBG_CHECK(active_ != nullptr, "watch needs an active replay");
  instr::Session* session = &active_->session();
  replay::WatchProbe probe;
  probe.name = variable;
  probe.changed = [session, rank, variable, last = std::vector<std::byte>{},
                   primed = false]() mutable {
    const auto view = session->variable(rank, variable);
    if (view.address == nullptr || view.bytes == 0) return false;
    std::vector<std::byte> current(view.bytes);
    std::memcpy(current.data(), view.address, view.bytes);
    if (!primed) {
      primed = true;
      last = std::move(current);
      return false;
    }
    if (current != last) {
      last = std::move(current);
      return true;
    }
    return false;
  };
  active_->control().arm_watch(rank, std::move(probe));
}

void Debugger::break_on_message(mpi::Rank rank,
                                const replay::MessageBreak& spec) {
  TDBG_CHECK(active_ != nullptr, "break_on_message needs an active replay");
  active_->control().arm_message(rank, spec);
}

std::optional<replay::StopInfo> Debugger::continue_rank(mpi::Rank rank) {
  TDBG_CHECK(active_ != nullptr, "no active replay");
  undo_stack_.push_back(current_markers());
  return active_->continue_rank(rank);
}

std::optional<std::vector<replay::StopInfo>> Debugger::undo() {
  if (undo_stack_.empty()) return std::nullopt;
  const auto target = undo_stack_.back();
  undo_stack_.pop_back();

  // Discard the current (re-)execution and replay afresh to the saved
  // markers.  For a live run the partial match log recorded so far
  // forces the prefix we are rolling back over — §4.2's "information
  // available in the program trace" — and the new run keeps recording
  // so the session stays live.
  replay::MatchLog log =
      live_ && active_ != nullptr ? active_->match_log() : recorded_run_.log;
  if (active_ != nullptr) {
    active_->finish();
    active_.reset();
  }
  active_ = std::make_unique<replay::ReplaySession>(
      num_ranks_, body_, std::move(log), options_.session,
      /*collect_trace=*/live_, /*record_matches=*/live_);
  return active_->run_to(target);
}

std::optional<mpi::RunResult> Debugger::end_replay() {
  if (active_ == nullptr) return std::nullopt;
  const auto result = active_->finish();
  if (live_) {
    // The live run just completed: its history becomes the session's
    // recorded run, unlocking the replay-based features.
    recorded_run_.result = result;
    recorded_run_.trace = active_->trace();
    recorded_run_.log = active_->match_log();
    recorded_ = true;
    live_ = false;
    // The history changed: the next analysis gets a fresh session over
    // the completed trace (or an incremental update of the old one,
    // but a live run's partial trace was never analyzable, so reset).
    session_.reset();
  }
  active_.reset();
  undo_stack_.clear();
  return result;
}

instr::Session* Debugger::replay_session() {
  return active_ == nullptr ? nullptr : &active_->session();
}

}  // namespace tdbg::dbg
