#include "server/protocol.hpp"

#include <cstring>

#include "support/error.hpp"
#include "trace/wire.hpp"

namespace tdbg::server {

namespace {

/// Throws a FormatError naming the protocol field that failed.
[[noreturn]] void bad(const std::string& what) {
  throw FormatError("tdbg.server protocol: " + what);
}

void put_bytes(support::BinaryWriter& w, std::span<const std::byte> bytes) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(bytes.size()));
  w.put_raw(bytes);
}

/// Reads a u32-length-prefixed blob by slicing `all` (the span the
/// reader was constructed over) — one memcpy, not a per-byte loop.
std::vector<std::byte> get_bytes(support::BinaryReader& r,
                                 std::span<const std::byte> all) {
  const auto n = r.get<std::uint32_t>();
  if (n > r.remaining()) bad("byte blob length exceeds frame");
  const auto at = r.position();
  std::vector<std::byte> out(all.begin() + static_cast<std::ptrdiff_t>(at),
                             all.begin() + static_cast<std::ptrdiff_t>(at + n));
  r.seek(at + n);
  return out;
}

/// Prepends the u32 length prefix to an encoded body.
std::vector<std::byte> frame(const support::BinaryWriter& body) {
  support::BinaryWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(body.size()));
  w.put_raw(body.bytes());
  return w.bytes();
}

}  // namespace

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kOpenTrace: return "open_trace";
    case Op::kMatchReport: return "match_report";
    case Op::kTraffic: return "traffic";
    case Op::kRaces: return "races";
    case Op::kDeadlock: return "deadlock";
    case Op::kWindow: return "window";
    case Op::kGraphDot: return "graph_dot";
    case Op::kSessionStats: return "session_stats";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

std::string_view status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kBadRequest: return "bad_request";
    case Status::kOverloaded: return "overloaded";
    case Status::kTimeout: return "timeout";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "?";
}

// --- Frame layer -----------------------------------------------------------

std::vector<std::byte> encode_request(const Request& request) {
  support::BinaryWriter body;
  body.put<std::uint32_t>(kRequestMagic);
  body.put<std::uint16_t>(kProtocolVersion);
  body.put<std::uint16_t>(static_cast<std::uint16_t>(request.op));
  body.put<std::uint64_t>(request.id);
  body.put<std::uint32_t>(request.deadline_ms);
  put_bytes(body, request.args);
  return frame(body);
}

std::vector<std::byte> encode_response(const Response& response) {
  support::BinaryWriter body;
  body.put<std::uint32_t>(kResponseMagic);
  body.put<std::uint16_t>(kProtocolVersion);
  body.put<std::uint16_t>(static_cast<std::uint16_t>(response.status));
  body.put<std::uint64_t>(response.id);
  body.put<std::uint32_t>(0);  // reserved
  put_bytes(body, response.payload);
  return frame(body);
}

Request decode_request(std::span<const std::byte> body) {
  support::BinaryReader r(body);
  if (r.get<std::uint32_t>() != kRequestMagic) bad("bad request magic");
  const auto version = r.get<std::uint16_t>();
  if (version != kProtocolVersion) {
    bad("unsupported protocol version " + std::to_string(version));
  }
  const auto op = r.get<std::uint16_t>();
  if (op > static_cast<std::uint16_t>(Op::kShutdown)) {
    bad("unknown op " + std::to_string(op));
  }
  Request req;
  req.op = static_cast<Op>(op);
  req.id = r.get<std::uint64_t>();
  req.deadline_ms = r.get<std::uint32_t>();
  req.args = get_bytes(r, body);
  if (!r.exhausted()) bad("trailing bytes after request args");
  return req;
}

Response decode_response(std::span<const std::byte> body) {
  support::BinaryReader r(body);
  if (r.get<std::uint32_t>() != kResponseMagic) bad("bad response magic");
  const auto version = r.get<std::uint16_t>();
  if (version != kProtocolVersion) {
    bad("unsupported protocol version " + std::to_string(version));
  }
  const auto status = r.get<std::uint16_t>();
  if (status > static_cast<std::uint16_t>(Status::kShuttingDown)) {
    bad("unknown status " + std::to_string(status));
  }
  Response resp;
  resp.status = static_cast<Status>(status);
  resp.id = r.get<std::uint64_t>();
  (void)r.get<std::uint32_t>();  // reserved
  resp.payload = get_bytes(r, body);
  if (!r.exhausted()) bad("trailing bytes after response payload");
  return resp;
}

void FrameAssembler::feed(std::span<const std::byte> bytes) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow the buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::byte>> FrameAssembler::next() {
  if (buffered() < sizeof(std::uint32_t)) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof(len));
  if (len > kMaxFrameBytes) {
    bad("frame length " + std::to_string(len) + " exceeds cap");
  }
  if (buffered() < sizeof(std::uint32_t) + len) return std::nullopt;
  const auto* begin = buf_.data() + pos_ + sizeof(std::uint32_t);
  std::vector<std::byte> body(begin, begin + len);
  pos_ += sizeof(std::uint32_t) + len;
  return body;
}

// --- Op argument payloads --------------------------------------------------

std::vector<std::byte> encode_trace_arg(std::string_view path) {
  support::BinaryWriter w;
  w.put_string(path);
  return w.bytes();
}

std::string decode_trace_arg(std::span<const std::byte> args) {
  support::BinaryReader r(args);
  auto path = r.get_string();
  if (!r.exhausted()) bad("trailing bytes after trace path");
  return path;
}

std::vector<std::byte> encode_window_args(std::string_view path,
                                          support::TimeNs t0,
                                          support::TimeNs t1) {
  support::BinaryWriter w;
  w.put_string(path);
  w.put<std::int64_t>(t0);
  w.put<std::int64_t>(t1);
  return w.bytes();
}

WindowArgs decode_window_args(std::span<const std::byte> args) {
  support::BinaryReader r(args);
  WindowArgs out;
  out.path = r.get_string();
  out.t0 = r.get<std::int64_t>();
  out.t1 = r.get<std::int64_t>();
  if (!r.exhausted()) bad("trailing bytes after window args");
  return out;
}

std::vector<std::byte> encode_graph_args(std::string_view path,
                                         GraphKind kind) {
  support::BinaryWriter w;
  w.put_string(path);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(kind));
  return w.bytes();
}

GraphArgs decode_graph_args(std::span<const std::byte> args) {
  support::BinaryReader r(args);
  GraphArgs out;
  out.path = r.get_string();
  const auto kind = r.get<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(GraphKind::kCall)) {
    bad("unknown graph kind " + std::to_string(kind));
  }
  out.kind = static_cast<GraphKind>(kind);
  if (!r.exhausted()) bad("trailing bytes after graph args");
  return out;
}

// --- Result payloads -------------------------------------------------------

std::vector<std::byte> encode_open_info(const OpenInfo& info) {
  support::BinaryWriter w;
  w.put_string(info.fingerprint);
  w.put<std::int32_t>(info.num_ranks);
  w.put<std::uint64_t>(info.events);
  w.put<std::uint64_t>(info.segments);
  w.put<std::int64_t>(info.t_min);
  w.put<std::int64_t>(info.t_max);
  return w.bytes();
}

OpenInfo decode_open_info(std::span<const std::byte> payload) {
  support::BinaryReader r(payload);
  OpenInfo info;
  info.fingerprint = r.get_string();
  info.num_ranks = r.get<std::int32_t>();
  info.events = r.get<std::uint64_t>();
  info.segments = r.get<std::uint64_t>();
  info.t_min = r.get<std::int64_t>();
  info.t_max = r.get<std::int64_t>();
  return info;
}

std::vector<std::byte> encode_match_report(const trace::MatchReport& report) {
  support::BinaryWriter w;
  w.put<std::uint64_t>(report.matches.size());
  for (const auto& m : report.matches) {
    w.put<std::uint64_t>(m.send_index);
    w.put<std::uint64_t>(m.recv_index);
  }
  w.put<std::uint64_t>(report.unmatched_sends.size());
  for (const auto i : report.unmatched_sends) w.put<std::uint64_t>(i);
  w.put<std::uint64_t>(report.unmatched_recvs.size());
  for (const auto i : report.unmatched_recvs) w.put<std::uint64_t>(i);
  return w.bytes();
}

trace::MatchReport decode_match_report(std::span<const std::byte> payload) {
  support::BinaryReader r(payload);
  trace::MatchReport report;
  const auto nm = r.get<std::uint64_t>();
  report.matches.reserve(nm);
  for (std::uint64_t i = 0; i < nm; ++i) {
    trace::MessageMatch m;
    m.send_index = r.get<std::uint64_t>();
    m.recv_index = r.get<std::uint64_t>();
    report.matches.push_back(m);
  }
  const auto nus = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nus; ++i) {
    report.unmatched_sends.push_back(r.get<std::uint64_t>());
  }
  const auto nur = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nur; ++i) {
    report.unmatched_recvs.push_back(r.get<std::uint64_t>());
  }
  return report;
}

std::vector<std::byte> encode_traffic(const analysis::TrafficReport& report) {
  support::BinaryWriter w;
  w.put<std::uint64_t>(report.channels.size());
  for (const auto& c : report.channels) {
    w.put<std::int32_t>(c.src);
    w.put<std::int32_t>(c.dst);
    w.put<std::uint64_t>(c.messages);
    w.put<std::uint64_t>(c.bytes);
    w.put<std::int64_t>(c.min_latency);
    w.put<std::int64_t>(c.max_latency);
    w.put<double>(c.mean_latency);
  }
  w.put<std::uint64_t>(report.ranks.size());
  for (const auto& t : report.ranks) {
    w.put<std::int32_t>(t.rank);
    w.put<std::uint64_t>(t.sends);
    w.put<std::uint64_t>(t.recvs);
    w.put<std::uint64_t>(t.bytes_out);
    w.put<std::uint64_t>(t.bytes_in);
  }
  w.put<std::uint64_t>(report.irregularities.size());
  for (const auto& irr : report.irregularities) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(irr.kind));
    w.put<std::int32_t>(irr.rank);
    w.put<std::uint64_t>(irr.event);
    w.put_string(irr.description);
  }
  return w.bytes();
}

analysis::TrafficReport decode_traffic(std::span<const std::byte> payload) {
  support::BinaryReader r(payload);
  analysis::TrafficReport report;
  const auto nc = r.get<std::uint64_t>();
  report.channels.reserve(nc);
  for (std::uint64_t i = 0; i < nc; ++i) {
    analysis::ChannelStats c;
    c.src = r.get<std::int32_t>();
    c.dst = r.get<std::int32_t>();
    c.messages = r.get<std::uint64_t>();
    c.bytes = r.get<std::uint64_t>();
    c.min_latency = r.get<std::int64_t>();
    c.max_latency = r.get<std::int64_t>();
    c.mean_latency = r.get<double>();
    report.channels.push_back(c);
  }
  const auto nr = r.get<std::uint64_t>();
  report.ranks.reserve(nr);
  for (std::uint64_t i = 0; i < nr; ++i) {
    analysis::RankTraffic t;
    t.rank = r.get<std::int32_t>();
    t.sends = r.get<std::uint64_t>();
    t.recvs = r.get<std::uint64_t>();
    t.bytes_out = r.get<std::uint64_t>();
    t.bytes_in = r.get<std::uint64_t>();
    report.ranks.push_back(t);
  }
  const auto ni = r.get<std::uint64_t>();
  report.irregularities.reserve(ni);
  for (std::uint64_t i = 0; i < ni; ++i) {
    analysis::Irregularity irr;
    const auto kind = r.get<std::uint8_t>();
    if (kind > static_cast<std::uint8_t>(
                   analysis::Irregularity::Kind::kRecvCountOutlier)) {
      bad("unknown irregularity kind " + std::to_string(kind));
    }
    irr.kind = static_cast<analysis::Irregularity::Kind>(kind);
    irr.rank = r.get<std::int32_t>();
    irr.event = r.get<std::uint64_t>();
    irr.description = r.get_string();
    report.irregularities.push_back(std::move(irr));
  }
  return report;
}

std::vector<std::byte> encode_races(const analysis::RaceReport& report) {
  support::BinaryWriter w;
  w.put<std::uint64_t>(report.races.size());
  for (const auto& race : report.races) {
    w.put<std::uint64_t>(race.recv_index);
    w.put<std::uint64_t>(race.matched_send);
    w.put<std::uint64_t>(race.candidates.size());
    for (const auto c : race.candidates) w.put<std::uint64_t>(c);
  }
  return w.bytes();
}

analysis::RaceReport decode_races(std::span<const std::byte> payload) {
  support::BinaryReader r(payload);
  analysis::RaceReport report;
  const auto n = r.get<std::uint64_t>();
  report.races.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    analysis::MessageRace race;
    race.recv_index = r.get<std::uint64_t>();
    race.matched_send = r.get<std::uint64_t>();
    const auto nc = r.get<std::uint64_t>();
    race.candidates.reserve(nc);
    for (std::uint64_t c = 0; c < nc; ++c) {
      race.candidates.push_back(r.get<std::uint64_t>());
    }
    report.races.push_back(std::move(race));
  }
  return report;
}

std::vector<std::byte> encode_deadlock(const DeadlockInfo& info) {
  support::BinaryWriter w;
  w.put<std::uint8_t>(info.stalled ? 1 : 0);
  w.put_string(info.description);
  w.put<std::uint64_t>(info.unmatched_send_indices.size());
  for (const auto i : info.unmatched_send_indices) w.put<std::uint64_t>(i);
  w.put<std::uint64_t>(info.last_marker_per_rank.size());
  for (const auto m : info.last_marker_per_rank) w.put<std::uint64_t>(m);
  return w.bytes();
}

DeadlockInfo decode_deadlock(std::span<const std::byte> payload) {
  support::BinaryReader r(payload);
  DeadlockInfo info;
  info.stalled = r.get<std::uint8_t>() != 0;
  info.description = r.get_string();
  const auto nu = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nu; ++i) {
    info.unmatched_send_indices.push_back(r.get<std::uint64_t>());
  }
  const auto nm = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nm; ++i) {
    info.last_marker_per_rank.push_back(r.get<std::uint64_t>());
  }
  return info;
}

std::vector<std::byte> encode_events(const std::vector<trace::Event>& events) {
  support::BinaryWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) trace::wire::encode_event(w, e);
  return w.bytes();
}

std::vector<trace::Event> decode_events(std::span<const std::byte> payload) {
  support::BinaryReader r(payload);
  const auto n = r.get<std::uint32_t>();
  std::vector<trace::Event> events;
  events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (r.get<std::uint8_t>() != trace::wire::kRecordEvent) {
      bad("event record tag mismatch");
    }
    // Reject unknown kind bytes before the cast, mirroring the trace
    // readers' contract.
    const auto at = r.position();
    auto e = trace::wire::decode_event(r);
    if (!trace::wire::valid_event_kind(static_cast<std::uint8_t>(e.kind))) {
      bad("invalid event kind at payload offset " + std::to_string(at));
    }
    events.push_back(e);
  }
  return events;
}

std::vector<std::byte> encode_text(std::string_view text) {
  support::BinaryWriter w;
  w.put_string(text);
  return w.bytes();
}

std::string decode_text(std::span<const std::byte> payload) {
  support::BinaryReader r(payload);
  return r.get_string();
}

std::vector<std::byte> encode_session_stats(const SessionStatsInfo& info) {
  support::BinaryWriter w;
  w.put_string(info.fingerprint);
  w.put<std::uint64_t>(info.events);
  w.put<std::uint64_t>(info.watermark);
  w.put<std::uint64_t>(info.cache_hits);
  w.put<std::uint64_t>(info.cache_misses);
  w.put<std::uint64_t>(info.cache_evictions);
  w.put<std::uint64_t>(info.resident_sessions);
  w.put_string(info.passes_text);
  return w.bytes();
}

SessionStatsInfo decode_session_stats(std::span<const std::byte> payload) {
  support::BinaryReader r(payload);
  SessionStatsInfo info;
  info.fingerprint = r.get_string();
  info.events = r.get<std::uint64_t>();
  info.watermark = r.get<std::uint64_t>();
  info.cache_hits = r.get<std::uint64_t>();
  info.cache_misses = r.get<std::uint64_t>();
  info.cache_evictions = r.get<std::uint64_t>();
  info.resident_sessions = r.get<std::uint64_t>();
  info.passes_text = r.get_string();
  return info;
}

Response make_error_response(std::uint64_t id, Status status,
                             std::string_view message) {
  Response resp;
  resp.status = status;
  resp.id = id;
  resp.payload = encode_text(message);
  return resp;
}

}  // namespace tdbg::server
