#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "server/session_cache.hpp"
#include "support/clock.hpp"

/// \file server.hpp
/// `tdbg::server::Server` — the concurrent trace-analysis daemon.
///
/// Threading model:
///
///   - one **reader** thread owns every socket: it accepts Unix-domain
///     and TCP connections, reassembles frames, decodes requests, and
///     *admits* them into a bounded pending queue;
///   - N **dispatcher** threads pop admitted requests, resolve the
///     trace through the `SessionCache`, and execute them; the heavy
///     artifact computation inside `analysis::Session` fans out onto
///     the existing `tdbg::exec` analysis pool exactly as it does for
///     a local debugger.
///
/// Admission control (never a silent hang):
///
///   - a full pending queue answers `Status::kOverloaded` immediately;
///   - a request whose `deadline_ms` elapses while still queued is
///     answered `Status::kTimeout` at dispatch, without computing;
///   - during drain, new requests get `Status::kShuttingDown` and new
///     connections are refused;
///   - `ping` is answered from the reader thread, bypassing the queue,
///     so liveness probes stay honest under load.
///
/// Shutdown ordering (graceful drain): stop accepting → reject new
/// requests → dispatchers finish every already-admitted request (all
/// responses are written) → sockets close → threads join.  Triggered
/// by the `shutdown` op, `shutdown()`, or the destructor.
///
/// Observability: `server.*` obs counters/gauges, telemetry `Span`s
/// per request phase (decode / dispatch / compute / encode) on the
/// Chrome-trace "tdbg" track, and flight-recorder sites for
/// connect/overload/timeout/shutdown.

namespace tdbg::server {

struct ServerOptions {
  /// Unix-domain socket path; empty = no Unix listener.
  std::string unix_path;
  /// TCP port on 127.0.0.1; -1 = no TCP listener, 0 = ephemeral
  /// (query the bound port with `tcp_port()`).
  int tcp_port = -1;
  /// Resident-session bound for the LRU cache.
  std::size_t max_sessions = 8;
  /// Admission bound: requests pending beyond this are rejected with
  /// `kOverloaded`.
  std::size_t max_pending = 64;
  /// Dispatcher threads (the per-request concurrency; artifact
  /// computation additionally parallelizes on the tdbg::exec pool).
  std::size_t dispatch_threads = 2;
  /// Test hook: every dispatched request sleeps this long before its
  /// deadline check, making queue-pressure paths (overload, timeout,
  /// drain) deterministic to exercise.  0 in production.
  support::TimeNs debug_dispatch_delay_ns = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Drains and joins (equivalent to `shutdown(); wait()`).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the reader + dispatcher threads.
  /// Throws `IoError` when a socket cannot be bound.
  void start();

  /// The TCP port actually bound (after `start()`), or -1.
  [[nodiscard]] int tcp_port() const { return bound_tcp_port_; }

  /// Initiates the graceful drain; returns immediately.  Idempotent.
  void shutdown();

  /// Blocks until the drain completes and the reader exits.
  void wait();

  /// True once `wait()` would return without blocking.
  [[nodiscard]] bool finished() const {
    return done_.load(std::memory_order_acquire);
  }

  /// Session-cache counters (also on the wire via `session_stats`).
  [[nodiscard]] SessionCache::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  struct Connection;
  using ConnPtr = std::shared_ptr<Connection>;

  struct PendingRequest {
    Request request;
    ConnPtr conn;
    support::TimeNs admit_ns = 0;
  };

  void reader_main();
  void dispatcher_main();
  void accept_on(int listen_fd, bool unix_socket);
  /// Reads everything available on `conn`; false = connection done.
  bool service_connection(const ConnPtr& conn);
  /// Decode + admit one frame body from `conn`.
  void admit_frame(const ConnPtr& conn, const std::vector<std::byte>& body);
  void handle_one(PendingRequest pending);
  void respond(const ConnPtr& conn, const Response& response);
  void close_all_connections();

  ServerOptions options_;
  SessionCache cache_;

  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::thread reader_;
  std::vector<std::thread> dispatchers_;
  std::map<int, ConnPtr> conns_;  ///< reader thread only

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> pending_;
  std::atomic<std::size_t> in_flight_{0};

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> done_{false};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::mutex join_mu_;

  class Metrics;
  std::unique_ptr<Metrics> metrics_;
};

}  // namespace tdbg::server
