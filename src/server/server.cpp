#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"
#include "server/ops.hpp"
#include "support/error.hpp"
#include "telemetry/log.hpp"
#include "telemetry/span.hpp"

namespace tdbg::server {

namespace {

using telemetry::LogLevel;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError("tdbg.server: " + what + ": " + std::strerror(errno));
}

/// The trace path every session op's args lead with (the session key).
std::string request_path(const Request& request) {
  support::BinaryReader reader(request.args);
  return reader.get_string();
}

}  // namespace

/// One accepted connection.  The reader thread owns `assembler`; the
/// write side is shared between the reader (ping, admission rejects)
/// and the dispatchers (results), serialized by `write_mu` so frames
/// never interleave.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd = -1;
  FrameAssembler assembler;
  std::mutex write_mu;
  std::atomic<bool> open{true};
};

/// Cached `server.*` instrument handles — registry lookups take a
/// mutex, so resolve once per server.
class Server::Metrics {
 public:
  Metrics() {
    auto& reg = obs::MetricsRegistry::global();
    requests_ = &reg.counter("server.requests");
    responses_ = &reg.counter("server.responses");
    bytes_in_ = &reg.counter("server.bytes_in");
    bytes_out_ = &reg.counter("server.bytes_out");
    overload_ = &reg.counter("server.overload_rejections");
    timeouts_ = &reg.counter("server.timeouts");
    bad_frames_ = &reg.counter("server.bad_frames");
    errors_ = &reg.counter("server.errors");
    queue_depth_ = &reg.gauge("server.queue_depth");
    queue_peak_ = &reg.gauge("server.queue_depth_peak");
    connections_ = &reg.gauge("server.connections");
    for (std::size_t op = 0; op < kOps; ++op) {
      std::string name = "server.requests.";
      name += op_name(static_cast<Op>(op));
      per_op_[op] = &reg.counter(name);
    }
  }

  void on_request(Op op, std::size_t frame_bytes) {
    requests_->add(-1);
    per_op_[static_cast<std::size_t>(op) % kOps]->add(-1);
    bytes_in_->add(-1, frame_bytes);
  }
  void on_response(std::size_t frame_bytes) {
    responses_->add(-1);
    bytes_out_->add(-1, frame_bytes);
  }
  void on_overload() { overload_->add(-1); }
  void on_timeout() { timeouts_->add(-1); }
  void on_bad_frame() { bad_frames_->add(-1); }
  void on_error() { errors_->add(-1); }
  void queue_depth(std::size_t depth) {
    queue_depth_->set(-1, depth);
    queue_peak_->record_max(-1, depth);
  }
  void connections(std::size_t n) { connections_->set(-1, n); }

 private:
  static constexpr std::size_t kOps =
      static_cast<std::size_t>(Op::kShutdown) + 1;

  obs::Counter* requests_ = nullptr;
  obs::Counter* responses_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* overload_ = nullptr;
  obs::Counter* timeouts_ = nullptr;
  obs::Counter* bad_frames_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* queue_peak_ = nullptr;
  obs::Gauge* connections_ = nullptr;
  std::array<obs::Counter*, kOps> per_op_{};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.max_sessions),
      metrics_(std::make_unique<Metrics>()) {}

Server::~Server() {
  shutdown();
  wait();
}

void Server::start() {
  if (started_.exchange(true)) return;

  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw IoError("tdbg.server: unix socket path too long: " +
                    options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listen_fd_ < 0) throw_errno("socket(AF_UNIX)");
    ::unlink(options_.unix_path.c_str());
    if (::bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind " + options_.unix_path);
    }
    if (::listen(unix_listen_fd_, 64) != 0) throw_errno("listen (unix)");
    set_nonblocking(unix_listen_fd_);
  }

  if (options_.tcp_port >= 0) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind tcp port " + std::to_string(options_.tcp_port));
    }
    if (::listen(tcp_listen_fd_, 64) != 0) throw_errno("listen (tcp)");
    set_nonblocking(tcp_listen_fd_);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  TDBG_LOG(LogLevel::kInfo, "server.listen",
           static_cast<std::uint64_t>(bound_tcp_port_ < 0 ? 0
                                                          : bound_tcp_port_),
           static_cast<std::uint64_t>(options_.unix_path.empty() ? 0 : 1));

  const std::size_t n_dispatch = std::max<std::size_t>(
      1, options_.dispatch_threads);
  dispatchers_.reserve(n_dispatch);
  for (std::size_t i = 0; i < n_dispatch; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_main(); });
  }
  reader_ = std::thread([this] { reader_main(); });
}

void Server::shutdown() {
  if (!started_.load(std::memory_order_acquire)) {
    done_.store(true, std::memory_order_release);
    done_cv_.notify_all();
    return;
  }
  if (!draining_.exchange(true)) {
    TDBG_LOG(LogLevel::kInfo, "server.shutdown");
    queue_cv_.notify_all();
    // Wake the reader's poll.
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [this] {
      return done_.load(std::memory_order_acquire);
    });
  }
  // Reap the worker threads (idempotent; protects concurrent waiters).
  std::lock_guard<std::mutex> lock(join_mu_);
  if (reader_.joinable()) reader_.join();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

// --- Reader thread ----------------------------------------------------------

void Server::reader_main() {
  std::vector<pollfd> fds;
  while (true) {
    // Drain finished: dispatchers idle, queue empty, draining flagged.
    if (draining_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (pending_.empty() &&
          in_flight_.load(std::memory_order_acquire) == 0) {
        break;
      }
    }

    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    const bool accepting = !draining_.load(std::memory_order_acquire);
    if (accepting && unix_listen_fd_ >= 0) {
      fds.push_back({unix_listen_fd_, POLLIN, 0});
    }
    if (accepting && tcp_listen_fd_ >= 0) {
      fds.push_back({tcp_listen_fd_, POLLIN, 0});
    }
    const std::size_t first_conn = fds.size();
    std::vector<int> conn_fds;
    for (const auto& [fd, conn] : conns_) {
      if (conn->open.load(std::memory_order_acquire)) {
        fds.push_back({fd, POLLIN, 0});
        conn_fds.push_back(fd);
      }
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char scratch[64];
      while (::read(wake_pipe_[0], scratch, sizeof(scratch)) > 0) {
      }
    }
    for (std::size_t i = 1; i < first_conn; ++i) {
      if ((fds[i].revents & POLLIN) != 0) {
        accept_on(fds[i].fd, fds[i].fd == unix_listen_fd_);
      }
    }
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = conns_.find(conn_fds[i - first_conn]);
      if (it == conns_.end()) continue;
      if (!service_connection(it->second)) {
        TDBG_LOG(LogLevel::kDebug, "server.disconnect",
                 static_cast<std::uint64_t>(it->first));
        it->second->open.store(false, std::memory_order_release);
        conns_.erase(it);
        metrics_->connections(conns_.size());
      }
    }
  }

  close_all_connections();
  if (unix_listen_fd_ >= 0) ::close(unix_listen_fd_);
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  unix_listen_fd_ = tcp_listen_fd_ = -1;

  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_.store(true, std::memory_order_release);
  }
  done_cv_.notify_all();
}

void Server::accept_on(int listen_fd, bool unix_socket) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again later
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    conns_.emplace(fd, std::make_shared<Connection>(fd));
    metrics_->connections(conns_.size());
    TDBG_LOG(LogLevel::kDebug, "server.connect",
             static_cast<std::uint64_t>(fd),
             static_cast<std::uint64_t>(unix_socket ? 1 : 0));
  }
}

bool Server::service_connection(const ConnPtr& conn) {
  std::byte buf[16 * 1024];
  while (true) {
    const auto got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got == 0) return false;  // peer closed
    if (got < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
    try {
      conn->assembler.feed({buf, static_cast<std::size_t>(got)});
      while (auto body = conn->assembler.next()) {
        admit_frame(conn, *body);
        if (!conn->open.load(std::memory_order_acquire)) return false;
      }
    } catch (const FormatError& e) {
      // Oversized/garbage length prefix: the stream is unrecoverable.
      metrics_->on_bad_frame();
      TDBG_LOG(LogLevel::kWarn, "server.badframe",
               static_cast<std::uint64_t>(conn->fd));
      respond(conn, make_error_response(0, Status::kBadRequest, e.what()));
      return false;
    }
  }
}

void Server::admit_frame(const ConnPtr& conn,
                         const std::vector<std::byte>& body) {
  Request request;
  {
    telemetry::Span span{std::string_view("server.decode")};
    try {
      request = decode_request(body);
    } catch (const FormatError& e) {
      metrics_->on_bad_frame();
      TDBG_LOG(LogLevel::kWarn, "server.badframe",
               static_cast<std::uint64_t>(conn->fd));
      respond(conn, make_error_response(0, Status::kBadRequest, e.what()));
      return;
    }
  }
  metrics_->on_request(request.op, body.size() + 4);

  // Control ops are answered from the reader so they stay responsive
  // when the queue is saturated — a ping during overload must succeed.
  if (request.op == Op::kPing) {
    respond(conn, Response{Status::kOk, request.id, {}});
    return;
  }
  if (request.op == Op::kShutdown) {
    respond(conn, Response{Status::kOk, request.id, {}});
    shutdown();
    return;
  }

  if (draining_.load(std::memory_order_acquire)) {
    respond(conn, make_error_response(request.id, Status::kShuttingDown,
                                      "server is draining"));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (pending_.size() >= options_.max_pending) {
      metrics_->on_overload();
      TDBG_LOG(LogLevel::kWarn, "server.overload", request.id,
               static_cast<std::uint64_t>(pending_.size()));
      respond(conn, make_error_response(
                        request.id, Status::kOverloaded,
                        "pending queue full (" +
                            std::to_string(options_.max_pending) +
                            "); retry later"));
      return;
    }
    pending_.push_back(
        PendingRequest{std::move(request), conn, support::now_ns()});
    metrics_->queue_depth(pending_.size());
  }
  queue_cv_.notify_one();
}

// --- Dispatcher threads -----------------------------------------------------

void Server::dispatcher_main() {
  while (true) {
    PendingRequest pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() ||
               draining_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) {
        if (draining_.load(std::memory_order_acquire)) return;
        continue;
      }
      pending = std::move(pending_.front());
      pending_.pop_front();
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      metrics_->queue_depth(pending_.size());
    }
    handle_one(std::move(pending));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Server::handle_one(PendingRequest pending) {
  if (options_.debug_dispatch_delay_ns > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.debug_dispatch_delay_ns));
  }

  // Queue-wait phase as a span: admission → dispatch.
  const support::TimeNs dispatched_ns = support::now_ns();
  const support::TimeNs waited_ns = dispatched_ns - pending.admit_ns;
  if (telemetry::SpanCollector::global().enabled()) {
    static const std::uint32_t kSite = telemetry::intern_site("server.dispatch");
    const support::TimeNs end_run = support::run_time_ns();
    const support::TimeNs start_run =
        end_run > waited_ns ? end_run - waited_ns : 0;
    telemetry::SpanCollector::global().add(kSite, -1, start_run, end_run);
  }

  const Request& request = pending.request;
  if (request.deadline_ms > 0 &&
      waited_ns > static_cast<support::TimeNs>(request.deadline_ms) *
                      1'000'000) {
    metrics_->on_timeout();
    TDBG_LOG(LogLevel::kWarn, "server.timeout", request.id,
             static_cast<std::uint64_t>(waited_ns / 1'000'000));
    respond(pending.conn,
            make_error_response(request.id, Status::kTimeout,
                                "deadline expired after " +
                                    std::to_string(waited_ns / 1'000'000) +
                                    " ms in queue"));
    return;
  }

  Response response;
  try {
    telemetry::Span span{std::string_view("server.compute")};
    const auto entry = cache_.open(request_path(request));
    const auto cache_stats = cache_.stats();
    const CacheView view{cache_stats.hits, cache_stats.misses,
                         cache_stats.evictions, cache_stats.resident};
    response = execute_on_session(request, *entry, view);
  } catch (const FormatError& e) {
    response = make_error_response(request.id, Status::kBadRequest, e.what());
  } catch (const std::exception& e) {
    response = make_error_response(request.id, Status::kError, e.what());
  }
  if (response.status != Status::kOk) metrics_->on_error();
  respond(pending.conn, response);
}

// --- Writing ----------------------------------------------------------------

void Server::respond(const ConnPtr& conn, const Response& response) {
  std::vector<std::byte> frame;
  {
    telemetry::Span span{std::string_view("server.encode")};
    frame = encode_response(response);
  }
  if (!conn->open.load(std::memory_order_acquire)) return;

  std::lock_guard<std::mutex> lock(conn->write_mu);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const auto n = ::send(conn->fd, frame.data() + sent, frame.size() - sent,
                          MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      ::poll(&pfd, 1, /*timeout_ms=*/1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    conn->open.store(false, std::memory_order_release);
    return;
  }
  metrics_->on_response(frame.size());
}

void Server::close_all_connections() {
  for (auto& [fd, conn] : conns_) {
    conn->open.store(false, std::memory_order_release);
  }
  conns_.clear();
  metrics_->connections(0);
}

}  // namespace tdbg::server
