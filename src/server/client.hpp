#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hpp"

/// \file client.hpp
/// Blocking client for the trace-analysis service.  One `Client` is
/// one connection; it is NOT thread-safe (each thread opens its own —
/// the server multiplexes).  Typed helpers decode the common payloads
/// and turn non-`kOk` statuses into `Error`s; `call` exposes the raw
/// response for callers that need the status or the exact payload
/// bytes (the byte-identity tests, the CLI's `--raw` mode).

namespace tdbg::server {

/// A parsed `unix:<path>` or `tcp:<host>:<port>` endpoint.
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;        ///< kUnix
  std::string host;        ///< kTcp
  int port = 0;            ///< kTcp
};

/// Parses an endpoint spec; throws `UsageError` on anything else.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

class Client {
 public:
  /// Connects immediately; throws `IoError` when the server is not
  /// reachable.
  explicit Client(const std::string& endpoint_spec);
  explicit Client(const Endpoint& endpoint);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request and blocks for its response.  Throws `IoError`
  /// on connection loss and `FormatError` on a malformed response;
  /// server-side failures come back as the response's status.
  Response call(Op op, std::vector<std::byte> args = {},
                std::uint32_t deadline_ms = 0);

  // Typed helpers (throw `Error` unless the server answered kOk).
  void ping();
  OpenInfo open_trace(const std::string& trace_path);
  trace::MatchReport match_report(const std::string& trace_path);
  analysis::TrafficReport traffic(const std::string& trace_path);
  analysis::RaceReport races(const std::string& trace_path);
  DeadlockInfo deadlock(const std::string& trace_path);
  std::vector<trace::Event> window(const std::string& trace_path,
                                   support::TimeNs t0, support::TimeNs t1);
  std::string graph_dot(const std::string& trace_path, GraphKind kind);
  SessionStatsInfo session_stats(const std::string& trace_path);
  /// Requests the graceful drain; the server still answers kOk first.
  void shutdown_server();

  /// Default queue-wait budget applied to every subsequent `call`
  /// (0 = none).  Explicit per-call deadlines override it.
  void set_deadline_ms(std::uint32_t deadline_ms) {
    default_deadline_ms_ = deadline_ms;
  }

 private:
  void connect(const Endpoint& endpoint);
  /// Response payload, after insisting the status is kOk.
  std::vector<std::byte> expect_ok(Op op, std::vector<std::byte> args);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::uint32_t default_deadline_ms_ = 0;
  FrameAssembler assembler_;
};

}  // namespace tdbg::server
