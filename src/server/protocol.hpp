#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/races.hpp"
#include "analysis/traffic.hpp"
#include "support/serialize.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

/// \file protocol.hpp
/// `tdbg::server` wire protocol — the pure codec layer.
///
/// The trace-analysis service speaks a length-prefixed binary protocol
/// (DeWiz's "analysis modules behind a socket" idea, AADEBUG 2003):
///
///   frame    := u32 body_len | body            (little-endian)
///   request  := magic 'TDRQ' | u16 version | u16 op | u64 id
///               | u32 deadline_ms | u32 arg_len | args
///   response := magic 'TDRS' | u16 version | u16 status | u64 id
///               | u32 reserved | u32 payload_len | payload
///
/// Everything in this file is *pure*: encoding and decoding operate on
/// byte buffers only, never on sockets, so the codec unit-tests
/// in-process and a malformed frame is rejected with a `FormatError`
/// naming the offending field — never by crashing the server.
///
/// Per-op argument and result payload encodings live here too, so the
/// client library and the server share one definition and the
/// "N clients see byte-identical responses" contract is meaningful.

namespace tdbg::server {

/// Protocol revision.  Bumped on any incompatible layout change; a
/// server rejects frames from a different major version with
/// `Status::kBadRequest`.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Request/response body magics ("TDRQ" / "TDRS" as little-endian u32).
inline constexpr std::uint32_t kRequestMagic = 0x51524454u;
inline constexpr std::uint32_t kResponseMagic = 0x53524454u;

/// Hard cap on a frame body.  A length prefix beyond this is treated
/// as garbage (corrupt stream or hostile peer) and rejected before any
/// allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Request operations.
enum class Op : std::uint16_t {
  kPing = 0,          ///< liveness probe; empty args, empty payload
  kOpenTrace = 1,     ///< warm a session; returns `OpenInfo`
  kMatchReport = 2,   ///< send/receive matching (`trace::MatchReport`)
  kTraffic = 3,       ///< traffic statistics (`analysis::TrafficReport`)
  kRaces = 4,         ///< wildcard-receive races (`analysis::RaceReport`)
  kDeadlock = 5,      ///< terminal-stall explanation (`DeadlockInfo`)
  kWindow = 6,        ///< events intersecting [t0, t1]
  kGraphDot = 7,      ///< comm/call graph rendered as DOT text
  kSessionStats = 8,  ///< per-session + cache observability
  kShutdown = 9,      ///< graceful drain-then-stop
};

/// Response statuses.  Everything except `kOk` carries a
/// length-prefixed human-readable message as its payload.
enum class Status : std::uint16_t {
  kOk = 0,
  kError = 1,         ///< op failed (bad trace path, analysis error, ...)
  kBadRequest = 2,    ///< frame decoded but the request is malformed
  kOverloaded = 3,    ///< pending queue full — explicit backpressure
  kTimeout = 4,       ///< request deadline expired before dispatch
  kShuttingDown = 5,  ///< server is draining; no new work admitted
};

[[nodiscard]] std::string_view op_name(Op op);
[[nodiscard]] std::string_view status_name(Status status);

/// One decoded request.
struct Request {
  Op op = Op::kPing;
  std::uint64_t id = 0;
  /// Queue-wait budget: if the request is still pending this many
  /// milliseconds after admission, the server answers `kTimeout`
  /// instead of computing.  0 = no deadline.
  std::uint32_t deadline_ms = 0;
  std::vector<std::byte> args;
};

/// One decoded response.
struct Response {
  Status status = Status::kOk;
  std::uint64_t id = 0;
  std::vector<std::byte> payload;
};

// --- Frame layer -----------------------------------------------------------

/// Encodes a complete wire frame (length prefix included).
[[nodiscard]] std::vector<std::byte> encode_request(const Request& request);
[[nodiscard]] std::vector<std::byte> encode_response(const Response& response);

/// Decodes a frame *body* (the bytes after the length prefix).
/// Throws `FormatError` on bad magic, version, op/status, or length.
[[nodiscard]] Request decode_request(std::span<const std::byte> body);
[[nodiscard]] Response decode_response(std::span<const std::byte> body);

/// Incremental frame reassembly over a byte stream.  Feed whatever
/// the socket produced; `next()` hands back one complete frame body at
/// a time.  A length prefix above `kMaxFrameBytes` throws
/// `FormatError` immediately (the stream is unrecoverable).
class FrameAssembler {
 public:
  void feed(std::span<const std::byte> bytes);
  /// The next complete frame body, if one is buffered.
  [[nodiscard]] std::optional<std::vector<std::byte>> next();
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

// --- Op argument payloads --------------------------------------------------

/// Which graph `Op::kGraphDot` renders.
enum class GraphKind : std::uint8_t { kComm = 0, kCall = 1 };

/// Most ops take just the trace path (the session key).
[[nodiscard]] std::vector<std::byte> encode_trace_arg(std::string_view path);
[[nodiscard]] std::string decode_trace_arg(std::span<const std::byte> args);

[[nodiscard]] std::vector<std::byte> encode_window_args(std::string_view path,
                                                        support::TimeNs t0,
                                                        support::TimeNs t1);
struct WindowArgs {
  std::string path;
  support::TimeNs t0 = 0;
  support::TimeNs t1 = 0;
};
[[nodiscard]] WindowArgs decode_window_args(std::span<const std::byte> args);

[[nodiscard]] std::vector<std::byte> encode_graph_args(std::string_view path,
                                                       GraphKind kind);
struct GraphArgs {
  std::string path;
  GraphKind kind = GraphKind::kComm;
};
[[nodiscard]] GraphArgs decode_graph_args(std::span<const std::byte> args);

// --- Result payloads -------------------------------------------------------

/// `Op::kOpenTrace` result: the session identity and trace shape.
/// Deterministic for a given file, so concurrent opens are
/// byte-identical.
struct OpenInfo {
  std::string fingerprint;  ///< session-cache key, hex
  std::int32_t num_ranks = 0;
  std::uint64_t events = 0;
  std::uint64_t segments = 0;
  support::TimeNs t_min = 0;
  support::TimeNs t_max = 0;

  friend bool operator==(const OpenInfo&, const OpenInfo&) = default;
};
[[nodiscard]] std::vector<std::byte> encode_open_info(const OpenInfo& info);
[[nodiscard]] OpenInfo decode_open_info(std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_match_report(
    const trace::MatchReport& report);
[[nodiscard]] trace::MatchReport decode_match_report(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_traffic(
    const analysis::TrafficReport& report);
[[nodiscard]] analysis::TrafficReport decode_traffic(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_races(
    const analysis::RaceReport& report);
[[nodiscard]] analysis::RaceReport decode_races(
    std::span<const std::byte> payload);

/// `Op::kDeadlock` result — the terminal-stall explanation derivable
/// from a recorded history: messages still in flight when the trace
/// ends (sent, never received) plus each rank's last recorded marker.
/// A live run's wait-snapshot deadlock cycle is the debugger's job;
/// the service explains what the *trace* shows.
struct DeadlockInfo {
  bool stalled = false;  ///< unmatched traffic at end of history
  std::string description;
  std::vector<std::uint64_t> unmatched_send_indices;
  std::vector<std::uint64_t> last_marker_per_rank;

  friend bool operator==(const DeadlockInfo&, const DeadlockInfo&) = default;
};
[[nodiscard]] std::vector<std::byte> encode_deadlock(const DeadlockInfo& info);
[[nodiscard]] DeadlockInfo decode_deadlock(std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_events(
    const std::vector<trace::Event>& events);
[[nodiscard]] std::vector<trace::Event> decode_events(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_text(std::string_view text);
[[nodiscard]] std::string decode_text(std::span<const std::byte> payload);

/// `Op::kSessionStats` result.  Includes live cache/timing numbers, so
/// (unlike the analysis ops) it is *not* byte-stable across requests.
struct SessionStatsInfo {
  std::string fingerprint;
  std::uint64_t events = 0;
  std::uint64_t watermark = 0;
  std::uint64_t cache_hits = 0;       ///< session-cache hits
  std::uint64_t cache_misses = 0;     ///< session-cache loads
  std::uint64_t cache_evictions = 0;
  std::uint64_t resident_sessions = 0;
  std::string passes_text;  ///< `analysis::Session::describe()`
};
[[nodiscard]] std::vector<std::byte> encode_session_stats(
    const SessionStatsInfo& info);
[[nodiscard]] SessionStatsInfo decode_session_stats(
    std::span<const std::byte> payload);

/// Builds a non-`kOk` response carrying `message` as its payload.
[[nodiscard]] Response make_error_response(std::uint64_t id, Status status,
                                           std::string_view message);

}  // namespace tdbg::server
