#include "server/ops.hpp"

#include <sstream>

#include "graph/call_graph.hpp"
#include "graph/comm_graph.hpp"
#include "graph/export.hpp"
#include "support/error.hpp"

namespace tdbg::server {

namespace {

Response ok(std::uint64_t id, std::vector<std::byte> payload) {
  Response resp;
  resp.status = Status::kOk;
  resp.id = id;
  resp.payload = std::move(payload);
  return resp;
}

}  // namespace

DeadlockInfo deadlock_from_trace(analysis::Session& session) {
  const auto& report = session.match_report();
  const auto& trace = session.trace();
  DeadlockInfo info;
  info.stalled = !report.unmatched_sends.empty();
  info.unmatched_send_indices.assign(report.unmatched_sends.begin(),
                                     report.unmatched_sends.end());
  info.last_marker_per_rank.resize(
      static_cast<std::size_t>(trace.num_ranks()), 0);
  for (int r = 0; r < trace.num_ranks(); ++r) {
    const auto n = trace.rank_size(r);
    if (n > 0) {
      info.last_marker_per_rank[static_cast<std::size_t>(r)] =
          trace.event(trace.rank_event(r, n - 1)).marker;
    }
  }

  std::ostringstream out;
  if (!info.stalled) {
    out << "no messages in flight at end of history ("
        << report.matches.size() << " matched)\n";
  } else {
    out << report.unmatched_sends.size()
        << " message(s) sent but never received:\n";
    std::size_t shown = 0;
    for (const auto idx : report.unmatched_sends) {
      if (shown++ == 16) {
        out << "  ... (" << report.unmatched_sends.size() - 16 << " more)\n";
        break;
      }
      const auto e = trace.event(idx);
      out << "  send #" << idx << ": rank " << e.rank << " -> " << e.peer
          << " tag " << e.tag << " (" << e.bytes << " bytes)\n";
    }
    out << "receivers of in-flight messages are candidates for blocked "
           "or dead ranks\n";
  }
  info.description = out.str();
  return info;
}

Response execute_on_session(const Request& request,
                            SessionCache::Entry& entry,
                            const CacheView& cache) {
  auto& session = *entry.session;
  const auto& trace = entry.trace;
  try {
    switch (request.op) {
      case Op::kOpenTrace: {
        OpenInfo info;
        info.fingerprint = entry.key.hex();
        info.num_ranks = trace.num_ranks();
        info.events = trace.size();
        info.segments = trace.segment_count();
        info.t_min = trace.t_min();
        info.t_max = trace.t_max();
        return ok(request.id, encode_open_info(info));
      }
      case Op::kMatchReport:
        return ok(request.id, encode_match_report(session.match_report()));
      case Op::kTraffic:
        return ok(request.id, encode_traffic(session.traffic()));
      case Op::kRaces:
        return ok(request.id, encode_races(session.races()));
      case Op::kDeadlock:
        return ok(request.id, encode_deadlock(deadlock_from_trace(session)));
      case Op::kWindow: {
        const auto args = decode_window_args(request.args);
        std::vector<trace::Event> events;
        trace.for_each_in_window(
            args.t0, args.t1,
            [&](std::size_t, const trace::Event& e) { events.push_back(e); });
        return ok(request.id, encode_events(events));
      }
      case Op::kGraphDot: {
        const auto args = decode_graph_args(request.args);
        std::string dot;
        if (args.kind == GraphKind::kComm) {
          dot = graph::to_dot(session.comm_graph().to_export());
        } else {
          dot = graph::to_dot(
              session.call_graph(std::nullopt).to_export(trace.constructs()));
        }
        return ok(request.id, encode_text(dot));
      }
      case Op::kSessionStats: {
        SessionStatsInfo info;
        info.fingerprint = entry.key.hex();
        info.events = trace.size();
        info.watermark = session.watermark();
        info.cache_hits = cache.hits;
        info.cache_misses = cache.misses;
        info.cache_evictions = cache.evictions;
        info.resident_sessions = cache.resident;
        info.passes_text = session.describe();
        return ok(request.id, encode_session_stats(info));
      }
      case Op::kPing:
      case Op::kShutdown:
        break;
    }
    return make_error_response(request.id, Status::kBadRequest,
                               "op does not take a session");
  } catch (const FormatError& e) {
    return make_error_response(request.id, Status::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return make_error_response(request.id, Status::kError, e.what());
  }
}

}  // namespace tdbg::server
