#pragma once

#include "analysis/session.hpp"
#include "server/protocol.hpp"
#include "server/session_cache.hpp"

/// \file ops.hpp
/// Request execution against one `analysis::Session` — the pure
/// compute core the server dispatches to.  Separated from the socket
/// machinery so the acceptance contract is testable in-process: a
/// served response's payload must be byte-identical to what
/// `execute_on_session` produces on a direct local session over the
/// same trace file.

namespace tdbg::server {

/// Cache-level numbers `Op::kSessionStats` reports alongside the
/// session's own state.
struct CacheView {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t resident = 0;
};

/// Executes one analysis request on `entry`'s session and returns the
/// full response.  Handles every op that needs a trace (`kOpenTrace`
/// through `kSessionStats`); `kPing` and `kShutdown` never reach here.
/// Exceptions from analysis surface as `Status::kError` responses —
/// the server never dies on a bad request.
///
/// All ops except `kSessionStats` are deterministic functions of the
/// trace content: concurrent clients receive byte-identical payloads.
[[nodiscard]] Response execute_on_session(const Request& request,
                                          SessionCache::Entry& entry,
                                          const CacheView& cache);

/// The trace-level stall explanation behind `Op::kDeadlock`:
/// messages still in flight when the history ends plus each rank's
/// last recorded marker.  Deterministic.
[[nodiscard]] DeadlockInfo deadlock_from_trace(analysis::Session& session);

}  // namespace tdbg::server
