#pragma once

#include <cstdint>
#include <filesystem>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "analysis/session.hpp"
#include "trace/trace.hpp"

/// \file session_cache.hpp
/// The server's shared-session store: N clients querying the same
/// trace file share ONE `analysis::Session` (and therefore one fused
/// sweep, one match report, one causal order...), which is the whole
/// point of PR-8's shared-artifact pipeline at serving scale.
///
/// Keying: a trace is identified by its **fingerprint** — path + file
/// size + a hash of the footer region (for a v2/v3 file, the exact
/// directory bytes, zone maps included; otherwise the file tail).
/// Replacing a trace file
/// in place therefore mints a new key: in-flight requests keep the old
/// entry alive through their `shared_ptr` while new opens load the new
/// content.
///
/// Concurrency: lookups and installs sit behind one mutex; the
/// *load* (open_trace + Session construction) runs outside it with a
/// `shared_future` per in-flight key, so N clients cold-opening the
/// same trace share a single load (same dedup discipline as the
/// segmented store's LRU).  Eviction is LRU by last touch and only
/// drops the cache's reference — never data a request is using.

namespace tdbg::server {

/// Identity of one trace file's content.
struct TraceKey {
  std::string path;
  std::uint64_t file_size = 0;
  std::uint64_t footer_hash = 0;

  /// Compact stable id ("<size>-<hash hex>") used on the wire.
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const TraceKey&, const TraceKey&) = default;
  friend auto operator<=>(const TraceKey&, const TraceKey&) = default;
};

/// Fingerprints `path` without building a trace: file size plus an
/// FNV-1a hash of the v2/v3 footer bytes (or the last 64 KiB when the
/// file carries no such trailer).  Throws `IoError` when unreadable.
[[nodiscard]] TraceKey fingerprint_trace_file(
    const std::filesystem::path& path);

/// LRU cache of live analysis sessions, keyed by trace fingerprint.
class SessionCache {
 public:
  /// One resident trace: the open trace handle plus its session.
  struct Entry {
    TraceKey key;
    trace::Trace trace;
    std::unique_ptr<analysis::Session> session;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// \param max_sessions resident-session bound (minimum 1).
  explicit SessionCache(std::size_t max_sessions);

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  /// The session for `path`, loading (or joining an in-flight load of)
  /// it on a miss.  Throws `IoError`/`FormatError` on unreadable or
  /// malformed files — the load failure is NOT cached.
  [[nodiscard]] EntryPtr open(const std::string& path);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;     ///< loads started
    std::uint64_t evictions = 0;
    std::size_t resident = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Drops every resident session (in-flight users keep theirs).
  void clear();

 private:
  void evict_excess_locked();

  const std::size_t max_sessions_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  ///< key.hex(), most recent first
  std::map<std::string, EntryPtr> cache_;
  std::map<std::string, std::shared_future<EntryPtr>> loading_;
  Stats stats_;
};

}  // namespace tdbg::server
