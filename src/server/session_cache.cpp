#include "server/session_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "trace/trace_io.hpp"
#include "trace/wire.hpp"

namespace tdbg::server {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

/// Cached instrument handles (registry lookups take a mutex).
struct CacheMetrics {
  obs::Counter& hits =
      obs::MetricsRegistry::global().counter("server.cache.hits");
  obs::Counter& misses =
      obs::MetricsRegistry::global().counter("server.cache.misses");
  obs::Counter& evictions =
      obs::MetricsRegistry::global().counter("server.cache.evictions");
  obs::Gauge& resident =
      obs::MetricsRegistry::global().gauge("server.cache.resident");

  static CacheMetrics& get() {
    static CacheMetrics m;
    return m;
  }
};

}  // namespace

std::string TraceKey::hex() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu-%016llx",
                static_cast<unsigned long long>(file_size),
                static_cast<unsigned long long>(footer_hash));
  return buf;
}

TraceKey fingerprint_trace_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open trace " + path.string() + " for fingerprint");
  }
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());

  // Hash the footer region of a v2/v3 file exactly: the directory
  // pins segment layout, event count, time bounds — and, on v3, the
  // per-segment zone maps and presence masks — so any semantic change
  // to the file moves the hash even at equal size.  Files without a
  // v2/v3 trailer (v1, text, partial flushes) hash their tail.
  std::uint64_t begin = 0;
  if (const auto footer = trace::try_read_footer(path)) {
    // Recover the footer offset from the trailer at end-of-file.
    in.seekg(static_cast<std::streamoff>(size - trace::wire::kTrailerBytes));
    char trailer[8];
    in.read(trailer, 8);
    std::uint64_t footer_offset = 0;
    std::memcpy(&footer_offset, trailer, 8);
    if (in && footer_offset < size) begin = footer_offset;
  } else if (size > 64 * 1024) {
    begin = size - 64 * 1024;
  }

  in.clear();
  in.seekg(static_cast<std::streamoff>(begin));
  std::uint64_t h = kFnvOffset;
  std::vector<char> buf(64 * 1024);
  std::uint64_t remaining = size - begin;
  while (remaining > 0 && in) {
    const auto chunk =
        static_cast<std::streamsize>(std::min<std::uint64_t>(remaining,
                                                             buf.size()));
    in.read(buf.data(), chunk);
    const auto got = in.gcount();
    if (got <= 0) break;
    h = fnv1a(h, buf.data(), static_cast<std::size_t>(got));
    remaining -= static_cast<std::uint64_t>(got);
  }
  TraceKey key;
  key.path = path.string();
  key.file_size = size;
  key.footer_hash = h;
  return key;
}

SessionCache::SessionCache(std::size_t max_sessions)
    : max_sessions_(std::max<std::size_t>(1, max_sessions)) {}

SessionCache::EntryPtr SessionCache::open(const std::string& path) {
  // Fingerprint outside the lock: it reads the file tail.
  const TraceKey key = fingerprint_trace_file(path);
  const std::string id = key.hex();
  auto& metrics = CacheMetrics::get();

  std::shared_future<EntryPtr> pending;
  std::promise<EntryPtr> promise;
  bool loader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = cache_.find(id); it != cache_.end()) {
      ++stats_.hits;
      metrics.hits.add(-1);
      lru_.remove(id);
      lru_.push_front(id);
      return it->second;
    }
    if (auto it = loading_.find(id); it != loading_.end()) {
      // Joining an in-flight load counts as a hit: no second load.
      ++stats_.hits;
      metrics.hits.add(-1);
      pending = it->second;
    } else {
      ++stats_.misses;
      metrics.misses.add(-1);
      pending = loading_[id] = promise.get_future().share();
      loader = true;
    }
  }
  if (!loader) return pending.get();

  // We own the load; run it with no lock held so other keys (and
  // joiners of this one) proceed.
  EntryPtr entry;
  try {
    auto loaded = std::make_shared<Entry>();
    loaded->key = key;
    loaded->trace = trace::open_trace(path);
    loaded->session = std::make_unique<analysis::Session>(loaded->trace);
    entry = std::move(loaded);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      loading_.erase(id);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    loading_.erase(id);
    cache_[id] = entry;
    lru_.push_front(id);
    evict_excess_locked();
    stats_.resident = cache_.size();
    metrics.resident.set(-1, cache_.size());
  }
  promise.set_value(entry);
  return entry;
}

void SessionCache::evict_excess_locked() {
  auto& metrics = CacheMetrics::get();
  while (cache_.size() > max_sessions_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++stats_.evictions;
    metrics.evictions.add(-1);
  }
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto s = stats_;
  s.resident = cache_.size();
  return s;
}

void SessionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
  stats_.resident = 0;
  CacheMetrics::get().resident.set(-1, 0);
}

}  // namespace tdbg::server
