#include "server/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace tdbg::server {

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw UsageError("empty unix socket path in " + spec);
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos) {
      // "tcp:<port>" — localhost.
      ep.host = "127.0.0.1";
      ep.port = std::atoi(rest.c_str());
    } else {
      ep.host = rest.substr(0, colon);
      ep.port = std::atoi(rest.c_str() + colon + 1);
    }
    if (ep.port <= 0 || ep.port > 65535) {
      throw UsageError("bad tcp port in endpoint " + spec);
    }
    return ep;
  }
  throw UsageError("endpoint must be unix:<path> or tcp:<host>:<port>, got " +
                   spec);
}

Client::Client(const std::string& endpoint_spec) {
  connect(parse_endpoint(endpoint_spec));
}

Client::Client(const Endpoint& endpoint) { connect(endpoint); }

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::connect(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(addr.sun_path)) {
      throw IoError("unix socket path too long: " + endpoint.path);
    }
    std::strncpy(addr.sun_path, endpoint.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      if (fd_ >= 0) ::close(fd_);
      fd_ = -1;
      throw IoError("cannot connect to unix:" + endpoint.path + ": " + err);
    }
    return;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    // Resolve a hostname ("localhost") without requiring dotted quads.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    if (::getaddrinfo(endpoint.host.c_str(), nullptr, &hints, &found) != 0 ||
        found == nullptr) {
      throw IoError("cannot resolve host " + endpoint.host);
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
    ::freeaddrinfo(found);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    throw IoError("cannot connect to tcp:" + endpoint.host + ":" +
                  std::to_string(endpoint.port) + ": " + err);
  }
}

Response Client::call(Op op, std::vector<std::byte> args,
                      std::uint32_t deadline_ms) {
  if (fd_ < 0) throw IoError("client is not connected");
  Request request;
  request.op = op;
  request.id = next_id_++;
  request.deadline_ms = deadline_ms != 0 ? deadline_ms : default_deadline_ms_;
  request.args = std::move(args);

  const auto frame = encode_request(request);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const auto n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw IoError("connection lost while sending request");
    sent += static_cast<std::size_t>(n);
  }

  while (true) {
    if (auto body = assembler_.next()) {
      const auto response = decode_response(*body);
      if (response.id != request.id && response.id != 0) {
        throw FormatError("response id " + std::to_string(response.id) +
                          " does not match request " +
                          std::to_string(request.id));
      }
      return response;
    }
    std::byte buf[16 * 1024];
    const auto got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) throw IoError("connection lost while awaiting response");
    assembler_.feed({buf, static_cast<std::size_t>(got)});
  }
}

std::vector<std::byte> Client::expect_ok(Op op, std::vector<std::byte> args) {
  auto response = call(op, std::move(args));
  if (response.status != Status::kOk) {
    std::string message;
    try {
      message = decode_text(response.payload);
    } catch (const FormatError&) {
      message = "(no detail)";
    }
    throw Error(std::string(op_name(op)) + " failed: " +
                std::string(status_name(response.status)) + ": " + message);
  }
  return std::move(response.payload);
}

void Client::ping() { (void)expect_ok(Op::kPing, {}); }

OpenInfo Client::open_trace(const std::string& trace_path) {
  return decode_open_info(
      expect_ok(Op::kOpenTrace, encode_trace_arg(trace_path)));
}

trace::MatchReport Client::match_report(const std::string& trace_path) {
  return decode_match_report(
      expect_ok(Op::kMatchReport, encode_trace_arg(trace_path)));
}

analysis::TrafficReport Client::traffic(const std::string& trace_path) {
  return decode_traffic(expect_ok(Op::kTraffic, encode_trace_arg(trace_path)));
}

analysis::RaceReport Client::races(const std::string& trace_path) {
  return decode_races(expect_ok(Op::kRaces, encode_trace_arg(trace_path)));
}

DeadlockInfo Client::deadlock(const std::string& trace_path) {
  return decode_deadlock(
      expect_ok(Op::kDeadlock, encode_trace_arg(trace_path)));
}

std::vector<trace::Event> Client::window(const std::string& trace_path,
                                         support::TimeNs t0,
                                         support::TimeNs t1) {
  return decode_events(
      expect_ok(Op::kWindow, encode_window_args(trace_path, t0, t1)));
}

std::string Client::graph_dot(const std::string& trace_path, GraphKind kind) {
  return decode_text(
      expect_ok(Op::kGraphDot, encode_graph_args(trace_path, kind)));
}

SessionStatsInfo Client::session_stats(const std::string& trace_path) {
  return decode_session_stats(
      expect_ok(Op::kSessionStats, encode_trace_arg(trace_path)));
}

void Client::shutdown_server() { (void)expect_ok(Op::kShutdown, {}); }

}  // namespace tdbg::server
