#pragma once

#include <cstdint>

#include "mpi/comm.hpp"

/// \file ring.hpp
/// Token-ring example: the smallest message-passing program with a
/// non-trivial time-space diagram.  Used by the quickstart example and
/// as a compact workload in tests.

namespace tdbg::apps::ring {

/// Workload parameters.
struct Options {
  int laps = 3;                 ///< times the token goes all the way around
  std::uint64_t increment = 1;  ///< added to the token at each hop
};

inline constexpr mpi::Tag kTagToken = 21;

/// The rank body: rank 0 injects a token; each rank receives from its
/// left neighbour, adds `increment`, and forwards right.  Returns the
/// final token value on rank 0 (laps * size * increment) and 0
/// elsewhere.
std::uint64_t rank_body(mpi::Comm& comm, const Options& options);

}  // namespace tdbg::apps::ring
