#include "apps/ring.hpp"

#include "instrument/api.hpp"
#include "support/error.hpp"

namespace tdbg::apps::ring {

std::uint64_t rank_body(mpi::Comm& comm, const Options& options) {
  TDBG_FUNCTION();
  const int p = comm.size();
  const mpi::Rank left = (comm.rank() - 1 + p) % p;
  const mpi::Rank right = (comm.rank() + 1) % p;

  std::uint64_t token = 0;
  if (comm.rank() == 0) {
    for (int lap = 0; lap < options.laps; ++lap) {
      comm.send_value<std::uint64_t>(token + options.increment, right,
                                     kTagToken, "ring_send");
      token = comm.recv_value<std::uint64_t>(left, kTagToken, nullptr,
                                             "ring_recv");
    }
    TDBG_CHECK(token == static_cast<std::uint64_t>(options.laps) *
                            static_cast<std::uint64_t>(p) * options.increment,
               "ring token has wrong final value");
    return token;
  }
  for (int lap = 0; lap < options.laps; ++lap) {
    const auto incoming =
        comm.recv_value<std::uint64_t>(left, kTagToken, nullptr, "ring_recv");
    comm.send_value<std::uint64_t>(incoming + options.increment, right,
                                   kTagToken, "ring_send");
  }
  return 0;
}

}  // namespace tdbg::apps::ring
