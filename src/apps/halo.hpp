#pragma once

#include <vector>

#include "replay/checkpointed_session.hpp"

/// \file halo.hpp
/// A BSP halo-exchange relaxation implementing `replay::SteppableApp`
/// — the cooperative target for checkpoint-accelerated rollback (§6).
/// Each superstep exchanges boundary values with ring neighbours and
/// relaxes the interior; steps end quiescent by construction (send,
/// then receive everything sent to you).

namespace tdbg::apps::halo {

/// Workload parameters.
struct Options {
  std::size_t cells = 32;        ///< per-rank vector length
  std::uint64_t max_steps = 200; ///< supersteps before finishing
};

/// The steppable app (one instance per rank).
class HaloApp : public replay::SteppableApp {
 public:
  explicit HaloApp(Options options) : options_(options) {}

  void init(mpi::Comm& comm) override;
  bool step(mpi::Comm& comm, std::uint64_t index) override;
  [[nodiscard]] std::vector<std::byte> snapshot() const override;
  void restore(std::span<const std::byte> state) override;

  /// Deterministic digest of the current state (test witness).
  [[nodiscard]] double checksum() const;

 private:
  Options options_;
  mpi::Rank rank_ = 0;
  int size_ = 1;
  std::vector<double> data_;
};

/// Factory for `replay::CheckpointedSession`.
replay::SteppableFactory factory(Options options = {});

}  // namespace tdbg::apps::halo
