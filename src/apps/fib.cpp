#include "apps/fib.hpp"

#include "instrument/api.hpp"

namespace tdbg::apps {

// noinline keeps both variants honest for the Table 1 comparison: the
// point of the workload is one real call per recursion step (the
// paper's 1998 compiler certainly made them), not whatever a modern
// optimizer can collapse the recursion into.
[[gnu::noinline]] std::uint64_t fib_instrumented(unsigned n) {
  TDBG_FUNCTION_ARGS(n, 0);
  if (n < 2) return n;
  return fib_instrumented(n - 1) + fib_instrumented(n - 2);
}

[[gnu::noinline]] std::uint64_t fib_plain(unsigned n) {
  if (n < 2) return n;
  return fib_plain(n - 1) + fib_plain(n - 2);
}

std::uint64_t fib_call_count(unsigned n) {
  // The naive recursion makes 2*fib(n+1) - 1 calls in total.
  std::uint64_t a = 0, b = 1;  // fib(0), fib(1)
  for (unsigned i = 0; i < n + 1; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return 2 * a - 1;
}

}  // namespace tdbg::apps
