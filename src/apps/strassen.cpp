#include "apps/strassen.hpp"

#include <cstring>

#include "instrument/api.hpp"
#include "support/error.hpp"

namespace tdbg::apps::strassen {

namespace {

struct WireHeader {
  std::uint64_t rows;
  std::uint64_t cols;
};

std::vector<std::byte> pack(const Matrix& m) {
  std::vector<std::byte> buf(sizeof(WireHeader) + m.data().size() * sizeof(double));
  const WireHeader h{m.rows(), m.cols()};
  std::memcpy(buf.data(), &h, sizeof h);
  std::memcpy(buf.data() + sizeof h, m.data().data(),
              m.data().size() * sizeof(double));
  return buf;
}

Matrix unpack(const std::vector<std::byte>& buf) {
  TDBG_CHECK(buf.size() >= sizeof(WireHeader), "matrix payload too short");
  WireHeader h;
  std::memcpy(&h, buf.data(), sizeof h);
  Matrix m(h.rows, h.cols);
  TDBG_CHECK(buf.size() == sizeof h + m.data().size() * sizeof(double),
             "matrix payload size mismatch");
  std::memcpy(m.data().data(), buf.data() + sizeof h,
              m.data().size() * sizeof(double));
  return m;
}

}  // namespace

void MatrSend(mpi::Comm& comm, const Matrix& m, mpi::Rank dest, mpi::Tag tag) {
  TDBG_FUNCTION_ARGS(dest, tag);
  const auto buf = pack(m);
  comm.send(std::span<const std::byte>(buf), dest, tag, "MatrSend");
}

Matrix MatrRecv(mpi::Comm& comm, mpi::Rank source, mpi::Tag tag) {
  TDBG_FUNCTION_ARGS(source, tag);
  std::vector<std::byte> buf;
  comm.recv(buf, source, tag, "MatrRecv");
  return unpack(buf);
}

mpi::Rank worker_for_product(int jres, int world_size) {
  TDBG_CHECK(world_size >= 2, "need at least one worker");
  return 1 + jres % (world_size - 1);
}

std::vector<std::pair<Matrix, Matrix>> product_operands(const Matrix& a,
                                                        const Matrix& b) {
  const Quadrants qa = split(a);
  const Quadrants qb = split(b);
  std::vector<std::pair<Matrix, Matrix>> ops;
  ops.reserve(7);
  ops.emplace_back(add(qa.q11, qa.q22), add(qb.q11, qb.q22));  // M1
  ops.emplace_back(add(qa.q21, qa.q22), qb.q11);               // M2
  ops.emplace_back(qa.q11, sub(qb.q12, qb.q22));               // M3
  ops.emplace_back(qa.q22, sub(qb.q21, qb.q11));               // M4
  ops.emplace_back(add(qa.q11, qa.q12), qb.q22);               // M5
  ops.emplace_back(sub(qa.q21, qa.q11), add(qb.q11, qb.q12));  // M6
  ops.emplace_back(sub(qa.q12, qa.q22), add(qb.q21, qb.q22));  // M7
  return ops;
}

Matrix combine_products(const std::vector<Matrix>& m) {
  TDBG_CHECK(m.size() == 7, "Strassen needs exactly seven products");
  Quadrants qc;
  qc.q11 = add(sub(add(m[0], m[3]), m[4]), m[6]);
  qc.q12 = add(m[2], m[4]);
  qc.q21 = add(m[1], m[3]);
  qc.q22 = add(sub(add(m[0], m[2]), m[1]), m[5]);
  return combine(qc);
}

namespace {

void master(mpi::Comm& comm, const Options& options) {
  TDBG_FUNCTION();
  Matrix a(options.n, options.n);
  Matrix b(options.n, options.n);
  a.fill_pattern(options.seed);
  b.fill_pattern(options.seed + 1);

  const auto operands = product_operands(a, b);

  {
    instr::ComputeScope distribute("distribute_products");
    for (int jres = 0; jres < 7; ++jres) {
      const auto& [left, right] = operands[static_cast<std::size_t>(jres)];
      MatrSend(comm, left, worker_for_product(jres, comm.size()),
               kTagOperandA);
      // The paper's bug (Fig. 7): the destination of the second operand
      // is `jres` where it should be `jres + 1` — i.e. one less than
      // the correct worker — so the last worker never gets its second
      // operand.
      const mpi::Rank dest =
          options.buggy ? worker_for_product(jres, comm.size()) - 1
                        : worker_for_product(jres, comm.size());
      MatrSend(comm, right, dest, kTagOperandB);
    }
  }

  std::vector<Matrix> partials(7);
  {
    instr::ComputeScope collect("collect_partials");
    for (int jres = 0; jres < 7; ++jres) {
      partials[static_cast<std::size_t>(jres)] =
          MatrRecv(comm, worker_for_product(jres, comm.size()), kTagResult);
    }
  }

  const Matrix c = combine_products(partials);
  if (options.verify && !options.buggy) {
    const Matrix reference = multiply_standard(a, b);
    const double err = max_abs_diff(c, reference);
    TDBG_CHECK(err < 1e-6, "distributed Strassen result diverges from "
                           "reference by " + std::to_string(err));
  }
}

void worker(mpi::Comm& comm, const Options& options) {
  TDBG_FUNCTION();
  // How many products round-robin assigns to this worker.
  int assigned = 0;
  for (int jres = 0; jres < 7; ++jres) {
    if (worker_for_product(jres, comm.size()) == comm.rank()) ++assigned;
  }
  for (int i = 0; i < assigned; ++i) {
    const Matrix left = MatrRecv(comm, 0, kTagOperandA);
    // The short computation "tick" visible before the main bar in the
    // paper's Figure 6: a small amount of work at the first receive.
    {
      instr::ComputeScope tick("prepare_operands");
      volatile double sink = 0.0;
      for (double v : left.data()) sink = sink + v;
    }
    const Matrix right = MatrRecv(comm, 0, kTagOperandB);
    Matrix product;
    {
      instr::ComputeScope compute("compute_product");
      product = strassen_local(left, right, options.cutoff);
    }
    MatrSend(comm, product, 0, kTagResult);
  }
}

}  // namespace

void rank_body(mpi::Comm& comm, const Options& options) {
  TDBG_FUNCTION();
  TDBG_CHECK(comm.size() >= 2, "Strassen example needs >= 2 ranks");
  TDBG_CHECK(options.n % 2 == 0, "matrix size must be even");
  if (comm.rank() == 0) {
    master(comm, options);
  } else {
    worker(comm, options);
  }
}

}  // namespace tdbg::apps::strassen
