#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// \file matrix.hpp
/// Dense row-major matrices and Strassen's algorithm — the paper's
/// running example workload (Figures 3–7 and Table 1 all use a
/// distributed Strassen matrix multiplication).

namespace tdbg::apps {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

  /// Fills with a deterministic pseudo-random pattern (`seed` selects
  /// the sequence); used by tests and benchmarks.
  void fill_pattern(std::uint64_t seed);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B by the schoolbook algorithm (reference for correctness
/// checks and the Strassen recursion base case).
Matrix multiply_standard(const Matrix& a, const Matrix& b);

/// Elementwise sum; dimensions must match.
Matrix add(const Matrix& a, const Matrix& b);

/// Elementwise difference; dimensions must match.
Matrix sub(const Matrix& a, const Matrix& b);

/// Largest absolute elementwise difference (for approximate checks).
double max_abs_diff(const Matrix& a, const Matrix& b);

/// The four quadrants of an even-dimensioned matrix, in row-major
/// block order: {a11, a12, a21, a22}.
struct Quadrants {
  Matrix q11, q12, q21, q22;
};

/// Splits an even-dimensioned matrix into quadrants.
Quadrants split(const Matrix& m);

/// Reassembles quadrants into one matrix.
Matrix combine(const Quadrants& q);

/// Local (single-process) Strassen multiplication, recursing down to
/// `cutoff` where it switches to the schoolbook algorithm.  Dimensions
/// must be powers of two times the cutoff, or simply even at each
/// level; odd sizes fall back to the standard algorithm.
/// Instrumented with TDBG_FUNCTION (this is the function-call workload
/// behind Table 1's "number of calls").
Matrix strassen_local(const Matrix& a, const Matrix& b,
                      std::size_t cutoff = 32);

}  // namespace tdbg::apps
