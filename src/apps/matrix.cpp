#include "apps/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "instrument/api.hpp"
#include "support/error.hpp"

namespace tdbg::apps {

void Matrix::fill_pattern(std::uint64_t seed) {
  // SplitMix64: deterministic, seed-selectable, no <random> state.
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
  for (auto& v : data_) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    v = static_cast<double>(z % 1000) / 100.0 - 5.0;
  }
}

Matrix multiply_standard(const Matrix& a, const Matrix& b) {
  TDBG_FUNCTION();
  TDBG_CHECK(a.cols() == b.rows(), "multiply: inner dimensions differ");
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order: streams through b and c rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  TDBG_FUNCTION();
  TDBG_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "add: dimension mismatch");
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < c.data().size(); ++i) {
    c.data()[i] = a.data()[i] + b.data()[i];
  }
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  TDBG_FUNCTION();
  TDBG_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "sub: dimension mismatch");
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < c.data().size(); ++i) {
    c.data()[i] = a.data()[i] - b.data()[i];
  }
  return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  TDBG_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "max_abs_diff: dimension mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

Quadrants split(const Matrix& m) {
  TDBG_CHECK(m.rows() % 2 == 0 && m.cols() % 2 == 0,
             "split needs even dimensions");
  const std::size_t hr = m.rows() / 2;
  const std::size_t hc = m.cols() / 2;
  Quadrants q{Matrix(hr, hc), Matrix(hr, hc), Matrix(hr, hc), Matrix(hr, hc)};
  for (std::size_t i = 0; i < hr; ++i) {
    for (std::size_t j = 0; j < hc; ++j) {
      q.q11.at(i, j) = m.at(i, j);
      q.q12.at(i, j) = m.at(i, j + hc);
      q.q21.at(i, j) = m.at(i + hr, j);
      q.q22.at(i, j) = m.at(i + hr, j + hc);
    }
  }
  return q;
}

Matrix combine(const Quadrants& q) {
  const std::size_t hr = q.q11.rows();
  const std::size_t hc = q.q11.cols();
  Matrix m(hr * 2, hc * 2);
  for (std::size_t i = 0; i < hr; ++i) {
    for (std::size_t j = 0; j < hc; ++j) {
      m.at(i, j) = q.q11.at(i, j);
      m.at(i, j + hc) = q.q12.at(i, j);
      m.at(i + hr, j) = q.q21.at(i, j);
      m.at(i + hr, j + hc) = q.q22.at(i, j);
    }
  }
  return m;
}

Matrix strassen_local(const Matrix& a, const Matrix& b, std::size_t cutoff) {
  TDBG_FUNCTION_ARGS(a.rows(), b.cols());
  TDBG_CHECK(a.cols() == b.rows(), "strassen: inner dimensions differ");
  if (a.rows() <= cutoff || a.cols() <= cutoff || b.cols() <= cutoff ||
      a.rows() % 2 != 0 || a.cols() % 2 != 0 || b.cols() % 2 != 0) {
    return multiply_standard(a, b);
  }
  const Quadrants qa = split(a);
  const Quadrants qb = split(b);

  // Strassen's seven products.
  const Matrix m1 = strassen_local(add(qa.q11, qa.q22), add(qb.q11, qb.q22), cutoff);
  const Matrix m2 = strassen_local(add(qa.q21, qa.q22), qb.q11, cutoff);
  const Matrix m3 = strassen_local(qa.q11, sub(qb.q12, qb.q22), cutoff);
  const Matrix m4 = strassen_local(qa.q22, sub(qb.q21, qb.q11), cutoff);
  const Matrix m5 = strassen_local(add(qa.q11, qa.q12), qb.q22, cutoff);
  const Matrix m6 = strassen_local(sub(qa.q21, qa.q11), add(qb.q11, qb.q12), cutoff);
  const Matrix m7 = strassen_local(sub(qa.q12, qa.q22), add(qb.q21, qb.q22), cutoff);

  Quadrants qc;
  qc.q11 = add(sub(add(m1, m4), m5), m7);
  qc.q12 = add(m3, m5);
  qc.q21 = add(m2, m4);
  qc.q22 = add(sub(add(m1, m3), m2), m6);
  return combine(qc);
}

}  // namespace tdbg::apps
