#pragma once

#include "apps/matrix.hpp"
#include "mpi/comm.hpp"

/// \file strassen.hpp
/// The paper's running example: a master/worker distributed Strassen
/// matrix multiplication (Figures 3–7, Table 1).
///
/// Process 0 splits A and B into quadrants, forms the seven Strassen
/// product operand pairs, and distributes them round-robin to the
/// worker ranks — two sends per product, one per operand ("each send
/// is shown as a separate message", Fig. 3).  Each worker receives its
/// operands, multiplies them locally, and returns the partial result,
/// which process 0 combines into the product.  On 8 ranks each worker
/// computes exactly one of the seven products, giving the paper's
/// communication picture.
///
/// The *buggy* variant reproduces Figures 5–7: in the distribution
/// loop the second operand is sent to destination `jres` instead of
/// `jres + 1` (the paper's line-161 bug in `MatrSend`), so process 7
/// never receives its second operand and ends blocked in a receive
/// while process 0 blocks waiting for 7's result — the missed-message
/// deadlock of Figure 5.

namespace tdbg::apps::strassen {

/// Workload parameters.
struct Options {
  std::size_t n = 128;        ///< A, B are n×n (n even)
  std::size_t cutoff = 32;    ///< local Strassen recursion cutoff
  bool buggy = false;         ///< inject the Fig. 5–7 destination bug
  bool verify = true;         ///< master checks the result (ignored when buggy)
  std::uint64_t seed = 1;     ///< input pattern seed
};

/// Message tags used by the example (visible in traces).
inline constexpr mpi::Tag kTagOperandA = 1;
inline constexpr mpi::Tag kTagOperandB = 2;
inline constexpr mpi::Tag kTagResult = 3;

/// Sends a matrix as one message (header + payload).  Named after the
/// paper's `MatrSend` (Fig. 7 steps through "the loop of MatrSend").
void MatrSend(mpi::Comm& comm, const Matrix& m, mpi::Rank dest, mpi::Tag tag);

/// Receives a matrix sent by `MatrSend`.
Matrix MatrRecv(mpi::Comm& comm, mpi::Rank source, mpi::Tag tag);

/// The rank body.  Run with at least 2 ranks; 8 ranks reproduces the
/// paper's figures.  Throws on verification failure.
void rank_body(mpi::Comm& comm, const Options& options);

/// Worker rank that will compute product `jres` (0-based) among
/// `world_size - 1` workers: round-robin assignment.
mpi::Rank worker_for_product(int jres, int world_size);

/// The seven Strassen operand pairs of (a, b)'s quadrants, in M1..M7
/// order.
std::vector<std::pair<Matrix, Matrix>> product_operands(const Matrix& a,
                                                        const Matrix& b);

/// Combines the seven partial products into the result matrix.
Matrix combine_products(const std::vector<Matrix>& m);

}  // namespace tdbg::apps::strassen
