#pragma once

#include <cstdint>

#include "mpi/comm.hpp"

/// \file taskfarm.hpp
/// A self-scheduling master/worker farm — the runtime's genuinely
/// nondeterministic workload.  The master hands out tasks to whichever
/// worker reports back first, using `ANY_SOURCE` receives, so the
/// message-matching order differs from run to run.  This is exactly
/// the nondeterminism the paper's §4.2 replay control has to pin down
/// ("the behavior of nondeterministic statements (such as statements
/// using the MPI_ANY_SOURCE wild card) can be controlled by p2d2 with
/// the information available in the program trace").

namespace tdbg::apps::taskfarm {

/// Workload parameters.
struct Options {
  int num_tasks = 40;        ///< tasks to farm out
  unsigned work_scale = 50;  ///< per-task busywork multiplier
  std::uint64_t seed = 3;    ///< task-cost pattern seed
};

inline constexpr mpi::Tag kTagTask = 31;
inline constexpr mpi::Tag kTagResult = 32;
inline constexpr mpi::Tag kTagStop = 33;

/// Deterministic per-task result the farm computes (so the master can
/// verify the total regardless of completion order).
std::uint64_t task_value(int task_id, const Options& options);

/// The rank body.  Needs >= 2 ranks.  On rank 0 returns the verified
/// sum of all task results; on workers returns the number of tasks
/// they processed.
std::uint64_t rank_body(mpi::Comm& comm, const Options& options);

}  // namespace tdbg::apps::taskfarm
