#include "apps/lu.hpp"

#include <vector>

#include "instrument/api.hpp"
#include "support/error.hpp"

namespace tdbg::apps::lu {

namespace {

/// Local block with one ghost row (index 0) and ghost column (index 0).
class Block {
 public:
  Block(std::size_t nx, std::size_t ny)
      : nx_(nx), ny_(ny), cells_((nx + 1) * (ny + 1), 0.0) {}

  double& at(std::size_t i, std::size_t j) { return cells_[i * (ny_ + 1) + j]; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return cells_[i * (ny_ + 1) + j];
  }

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }

 private:
  std::size_t nx_, ny_;
  std::vector<double> cells_;
};

void fill_block(Block& b, std::uint64_t seed) {
  std::uint64_t x = seed;
  for (std::size_t i = 0; i <= b.nx(); ++i) {
    for (std::size_t j = 0; j <= b.ny(); ++j) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      b.at(i, j) = static_cast<double>((x >> 33) % 1000) / 1000.0;
    }
  }
}

/// One wavefront relaxation pass in the (+i, +j) direction.
void relax_lower(Block& b) {
  TDBG_FUNCTION();
  instr::ComputeScope scope("relax_lower");
  for (std::size_t i = 1; i <= b.nx(); ++i) {
    for (std::size_t j = 1; j <= b.ny(); ++j) {
      b.at(i, j) = 0.25 * (2.0 * b.at(i, j) + b.at(i - 1, j) + b.at(i, j - 1));
    }
  }
}

/// One wavefront relaxation pass in the (-i, -j) direction.
void relax_upper(Block& b) {
  TDBG_FUNCTION();
  instr::ComputeScope scope("relax_upper");
  for (std::size_t i = b.nx(); i >= 1; --i) {
    for (std::size_t j = b.ny(); j >= 1; --j) {
      b.at(i, j) = 0.25 * (2.0 * b.at(i, j) + b.at(i + 1 <= b.nx() ? i + 1 : i, j) +
                           b.at(i, j + 1 <= b.ny() ? j + 1 : j));
    }
  }
}

std::vector<double> east_boundary(const Block& b) {
  std::vector<double> col(b.nx());
  for (std::size_t i = 1; i <= b.nx(); ++i) col[i - 1] = b.at(i, b.ny());
  return col;
}

std::vector<double> south_boundary(const Block& b) {
  std::vector<double> row(b.ny());
  for (std::size_t j = 1; j <= b.ny(); ++j) row[j - 1] = b.at(b.nx(), j);
  return row;
}

std::vector<double> west_boundary(const Block& b) {
  std::vector<double> col(b.nx());
  for (std::size_t i = 1; i <= b.nx(); ++i) col[i - 1] = b.at(i, 1);
  return col;
}

std::vector<double> north_boundary(const Block& b) {
  std::vector<double> row(b.ny());
  for (std::size_t j = 1; j <= b.ny(); ++j) row[j - 1] = b.at(1, j);
  return row;
}

void set_west_ghost(Block& b, const std::vector<double>& col) {
  for (std::size_t i = 1; i <= b.nx(); ++i) b.at(i, 0) = col[i - 1];
}

void set_north_ghost(Block& b, const std::vector<double>& row) {
  for (std::size_t j = 1; j <= b.ny(); ++j) b.at(0, j) = row[j - 1];
}

}  // namespace

double rank_body(mpi::Comm& comm, const Options& options) {
  TDBG_FUNCTION();
  TDBG_CHECK(comm.size() == options.px * options.py,
             "LU needs exactly px*py ranks");
  const int cx = comm.rank() % options.px;  // column in processor grid
  const int cy = comm.rank() / options.px;  // row in processor grid
  const mpi::Rank west = cx > 0 ? comm.rank() - 1 : mpi::kAnySource;
  const mpi::Rank east = cx < options.px - 1 ? comm.rank() + 1 : mpi::kAnySource;
  const mpi::Rank north = cy > 0 ? comm.rank() - options.px : mpi::kAnySource;
  const mpi::Rank south =
      cy < options.py - 1 ? comm.rank() + options.px : mpi::kAnySource;

  Block block(options.nx, options.ny);
  fill_block(block, options.seed + static_cast<std::uint64_t>(comm.rank()));

  std::vector<double> ghost;
  for (int iter = 0; iter < options.iterations; ++iter) {
    // Lower-triangular sweep: the wavefront enters from the north-west.
    if (options.nonblocking) {
      // Overlapped variant: post both entry receives up front, then
      // complete them in order (waitall — the §6 restrictions allow
      // WAITALL, only WAITANY is excluded).
      std::vector<std::byte> wbuf, nbuf;
      std::vector<mpi::Request> reqs;
      if (west != mpi::kAnySource) {
        reqs.push_back(comm.irecv(wbuf, west, kTagEast, "lu_irecv_west"));
      }
      if (north != mpi::kAnySource) {
        reqs.push_back(comm.irecv(nbuf, north, kTagSouth, "lu_irecv_north"));
      }
      comm.waitall(reqs);
      if (west != mpi::kAnySource) {
        ghost.resize(wbuf.size() / sizeof(double));
        std::memcpy(ghost.data(), wbuf.data(), wbuf.size());
        set_west_ghost(block, ghost);
      }
      if (north != mpi::kAnySource) {
        ghost.resize(nbuf.size() / sizeof(double));
        std::memcpy(ghost.data(), nbuf.data(), nbuf.size());
        set_north_ghost(block, ghost);
      }
    } else {
      if (west != mpi::kAnySource) {
        comm.recv_into(ghost, west, kTagEast, nullptr, "lu_recv_west");
        set_west_ghost(block, ghost);
      }
      if (north != mpi::kAnySource) {
        comm.recv_into(ghost, north, kTagSouth, nullptr, "lu_recv_north");
        set_north_ghost(block, ghost);
      }
    }
    relax_lower(block);
    if (east != mpi::kAnySource) {
      const auto col = east_boundary(block);
      comm.send_span<double>(col, east, kTagEast, "lu_send_east");
    }
    if (south != mpi::kAnySource) {
      const auto row = south_boundary(block);
      comm.send_span<double>(row, south, kTagSouth, "lu_send_south");
    }

    // Upper-triangular sweep: the wavefront enters from the south-east.
    if (east != mpi::kAnySource) {
      comm.recv_into(ghost, east, kTagWest, nullptr, "lu_recv_east");
      // Incoming east ghost data folds into the outermost column.
      for (std::size_t i = 1; i <= block.nx(); ++i) {
        block.at(i, block.ny()) = 0.5 * (block.at(i, block.ny()) + ghost[i - 1]);
      }
    }
    if (south != mpi::kAnySource) {
      comm.recv_into(ghost, south, kTagNorth, nullptr, "lu_recv_south");
      for (std::size_t j = 1; j <= block.ny(); ++j) {
        block.at(block.nx(), j) = 0.5 * (block.at(block.nx(), j) + ghost[j - 1]);
      }
    }
    relax_upper(block);
    if (west != mpi::kAnySource) {
      const auto col = west_boundary(block);
      comm.send_span<double>(col, west, kTagWest, "lu_send_west");
    }
    if (north != mpi::kAnySource) {
      const auto row = north_boundary(block);
      comm.send_span<double>(row, north, kTagNorth, "lu_send_north");
    }
  }

  double checksum = 0.0;
  for (std::size_t i = 1; i <= block.nx(); ++i) {
    for (std::size_t j = 1; j <= block.ny(); ++j) {
      checksum += block.at(i, j);
    }
  }
  return comm.allreduce_value<double>(checksum,
                                      [](double a, double b) { return a + b; },
                                      "lu_checksum");
}

}  // namespace tdbg::apps::lu
