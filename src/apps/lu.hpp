#pragma once

#include <cstdint>

#include "mpi/comm.hpp"

/// \file lu.hpp
/// An SSOR wavefront kernel with the communication structure of the
/// NAS Parallel Benchmark LU — the trace behind the paper's Figure 8
/// (past/future frontiers of a point in an NPB-LU execution).
///
/// Ranks form a `px × py` processor grid; each owns a block of a 2-D
/// domain.  The lower-triangular sweep updates cells in dependence
/// order (i-1, j) and (i, j-1), so each rank must receive its west
/// ghost column and north ghost row before computing, then forward its
/// east/south boundaries — the classic pipelined wavefront.  The upper
/// sweep runs the same pipeline in the opposite direction.  This
/// staggered neighbour traffic is what gives the LU trace its
/// non-trivial causal structure: the past/future frontier of a
/// mid-trace event slopes across the process axis instead of being
/// vertical.

namespace tdbg::apps::lu {

/// Workload parameters; the run needs exactly `px * py` ranks.
struct Options {
  int px = 4;              ///< processor-grid width
  int py = 2;              ///< processor-grid height
  std::size_t nx = 24;     ///< local block width (cells)
  std::size_t ny = 24;     ///< local block height (cells)
  int iterations = 3;      ///< SSOR iterations (lower + upper sweep each)
  std::uint64_t seed = 7;  ///< initial field pattern
  bool nonblocking = false;  ///< post both sweep-entry receives with
                             ///< irecv and complete them at wait — the
                             ///< overlapped-communication variant
};

/// Message tags (one per sweep direction and boundary).
inline constexpr mpi::Tag kTagEast = 11;   ///< west → east ghost column
inline constexpr mpi::Tag kTagSouth = 12;  ///< north → south ghost row
inline constexpr mpi::Tag kTagWest = 13;   ///< east → west ghost column
inline constexpr mpi::Tag kTagNorth = 14;  ///< south → north ghost row

/// The rank body.  Returns this rank's final block checksum (summed
/// across ranks by an allreduce, so every rank returns the same global
/// value — tests use it as a determinism witness).
double rank_body(mpi::Comm& comm, const Options& options);

}  // namespace tdbg::apps::lu
