#pragma once

#include <cstdint>

/// \file fib.hpp
/// Recursive Fibonacci — the paper's worst-case instrumentation
/// workload for Table 1: ~30 million instrumented calls for fib(35),
/// where `UserMonitor` dominates the runtime.

namespace tdbg::apps {

/// Recursive Fibonacci with a `TDBG_FUNCTION` guard on every call.
/// Deliberately naive: the point is the call volume.
std::uint64_t fib_instrumented(unsigned n);

/// The same recursion without any instrumentation statement (the
/// "uninstrumented" row of Table 1).
std::uint64_t fib_plain(unsigned n);

/// Number of calls the recursion makes for `n` (2*fib(n+1)-1), which
/// is the "Number of calls" row of Table 1.
std::uint64_t fib_call_count(unsigned n);

}  // namespace tdbg::apps
