#include "apps/halo.hpp"

#include <cstring>
#include <numeric>

#include "instrument/api.hpp"

namespace tdbg::apps::halo {

void HaloApp::init(mpi::Comm& comm) {
  rank_ = comm.rank();
  size_ = comm.size();
  data_.assign(options_.cells, static_cast<double>(rank_ + 1));
}

bool HaloApp::step(mpi::Comm& comm, std::uint64_t index) {
  TDBG_FUNCTION_ARGS(index, 0);
  const mpi::Rank left = rank_ > 0 ? rank_ - 1 : mpi::kAnySource;
  const mpi::Rank right = rank_ < size_ - 1 ? rank_ + 1 : mpi::kAnySource;

  // Send my boundary values out, then receive the neighbours' —
  // quiescent by construction.
  if (left != mpi::kAnySource) {
    comm.send_value<double>(data_.front(), left, 1, "halo_send");
  }
  if (right != mpi::kAnySource) {
    comm.send_value<double>(data_.back(), right, 2, "halo_send");
  }
  double from_right = data_.back();
  double from_left = data_.front();
  if (right != mpi::kAnySource) {
    from_right = comm.recv_value<double>(right, 1, nullptr, "halo_recv");
  }
  if (left != mpi::kAnySource) {
    from_left = comm.recv_value<double>(left, 2, nullptr, "halo_recv");
  }

  std::vector<double> next(data_);
  next.front() = 0.5 * (data_.front() + from_left);
  next.back() = 0.5 * (data_.back() + from_right);
  for (std::size_t i = 1; i + 1 < data_.size(); ++i) {
    next[i] = 0.25 * (data_[i - 1] + 2 * data_[i] + data_[i + 1]);
  }
  data_ = std::move(next);
  return index + 1 < options_.max_steps;
}

std::vector<std::byte> HaloApp::snapshot() const {
  std::vector<std::byte> bytes(data_.size() * sizeof(double));
  std::memcpy(bytes.data(), data_.data(), bytes.size());
  return bytes;
}

void HaloApp::restore(std::span<const std::byte> state) {
  data_.resize(state.size() / sizeof(double));
  std::memcpy(data_.data(), state.data(), state.size());
}

double HaloApp::checksum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

replay::SteppableFactory factory(Options options) {
  return [options](mpi::Rank) { return std::make_unique<HaloApp>(options); };
}

}  // namespace tdbg::apps::halo
