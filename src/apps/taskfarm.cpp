#include "apps/taskfarm.hpp"

#include "instrument/api.hpp"
#include "support/error.hpp"

namespace tdbg::apps::taskfarm {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Busywork whose duration varies by task, so workers finish out of
/// order and race to the master's ANY_SOURCE receive.
std::uint64_t compute_task(int task_id, const Options& options) {
  TDBG_FUNCTION_ARGS(task_id, 0);
  instr::ComputeScope scope("compute_task");
  return task_value(task_id, options);
}

}  // namespace

std::uint64_t task_value(int task_id, const Options& options) {
  const auto rounds =
      (mix(options.seed + static_cast<std::uint64_t>(task_id)) % 7 + 1) *
      options.work_scale;
  std::uint64_t acc = static_cast<std::uint64_t>(task_id);
  for (std::uint64_t i = 0; i < rounds; ++i) acc = mix(acc + i);
  return acc;
}

namespace {

std::uint64_t master(mpi::Comm& comm, const Options& options) {
  TDBG_FUNCTION();
  const int workers = comm.size() - 1;
  int next_task = 0;
  int outstanding = 0;
  std::uint64_t total = 0;

  // Prime every worker with one task (or stop it immediately if there
  // are fewer tasks than workers).
  for (mpi::Rank w = 1; w <= workers; ++w) {
    if (next_task < options.num_tasks) {
      comm.send_value<int>(next_task++, w, kTagTask, "farm_send_task");
      ++outstanding;
    } else {
      comm.send_value<int>(-1, w, kTagStop, "farm_send_stop");
    }
  }

  // Self-scheduling loop: whichever worker answers first gets the next
  // task — the ANY_SOURCE receive that makes the run nondeterministic.
  while (outstanding > 0) {
    mpi::Status st;
    const auto result = comm.recv_value<std::uint64_t>(
        mpi::kAnySource, kTagResult, &st, "farm_recv_result");
    total += result;
    --outstanding;
    if (next_task < options.num_tasks) {
      comm.send_value<int>(next_task++, st.source, kTagTask, "farm_send_task");
      ++outstanding;
    } else {
      comm.send_value<int>(-1, st.source, kTagStop, "farm_send_stop");
    }
  }

  // Verify independently of completion order.
  std::uint64_t expected = 0;
  for (int t = 0; t < options.num_tasks; ++t) {
    expected += task_value(t, options);
  }
  TDBG_CHECK(total == expected, "task farm total mismatch");
  return total;
}

std::uint64_t worker(mpi::Comm& comm, const Options& options) {
  TDBG_FUNCTION();
  std::uint64_t processed = 0;
  for (;;) {
    mpi::Status st;
    const int task = comm.recv_value<int>(0, mpi::kAnyTag, &st, "farm_recv");
    if (st.tag == kTagStop) break;
    const auto result = compute_task(task, options);
    comm.send_value<std::uint64_t>(result, 0, kTagResult, "farm_send_result");
    ++processed;
  }
  return processed;
}

}  // namespace

std::uint64_t rank_body(mpi::Comm& comm, const Options& options) {
  TDBG_FUNCTION();
  TDBG_CHECK(comm.size() >= 2, "task farm needs >= 2 ranks");
  return comm.rank() == 0 ? master(comm, options) : worker(comm, options);
}

}  // namespace tdbg::apps::taskfarm
