#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/clock.hpp"

/// \file metrics.hpp
/// Runtime metrics for the debugger and the mini-MPI runtime — the
/// self-observation layer the paper's monitor implies but never builds
/// ("the monitor ... can be toggled on and off to control trace size",
/// §2-3): the debugger must know what observation costs, how many
/// messages/bytes flowed, and how long its own machinery (flush,
/// replay, checkpointing, analysis) took.
///
/// Design constraints, in order:
///
///  1. The hot path of a *disabled* instrument is a single relaxed
///     atomic load (asserted by `bench/abl_metrics_cost`).
///  2. Instruments are thread-safe across ranks with no shared cache
///     lines: every instrument keeps one cache-line-padded slot per
///     rank, so concurrent ranks never contend.
///  3. With `TDBG_METRICS=OFF` (CMake option) the layer compiles out
///     to no-ops — `if constexpr` on `kMetricsEnabled` removes every
///     update before codegen.
///
/// Naming convention: `family.detail[_unit]`, where the family is the
/// taxonomy DESIGN.md describes — `mpi` (runtime), `collector`
/// (trace collection), `replay` (record/replay/checkpoint),
/// `analysis` (graph builds and detectors), `bench` (harness).

namespace tdbg::obs {

#if !defined(TDBG_METRICS) || TDBG_METRICS
inline constexpr bool kMetricsEnabled = true;
#else
inline constexpr bool kMetricsEnabled = false;
#endif

/// Per-instrument rank slots.  Slot 0 collects updates from outside a
/// rank (driver thread, tools); ranks map to slots 1..kRankSlots-1,
/// with ranks beyond the capacity folded modulo (totals stay exact,
/// only per-rank attribution aliases).
inline constexpr int kRankSlots = 33;

/// The slot a rank's updates land in.
constexpr std::size_t slot_of(int rank) {
  return rank < 0 ? 0
                  : 1 + static_cast<std::size_t>(rank) %
                          static_cast<std::size_t>(kRankSlots - 1);
}

/// The rank a slot reports as (slot 0 → -1, "no rank").
constexpr int rank_of_slot(std::size_t slot) {
  return slot == 0 ? -1 : static_cast<int>(slot) - 1;
}

/// What a metric's values measure (selects formatting).
enum class Unit : std::uint8_t { kCount, kNanoseconds, kBytes };

/// Instrument kinds (drives snapshot diff semantics: counters and
/// histograms subtract, gauges keep the newer value).
enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

std::string_view unit_name(Unit unit);
std::string_view instrument_kind_name(InstrumentKind kind);

namespace detail {

/// One cache-line-padded atomic cell, so per-rank updates never share
/// a line (false sharing would put rank-to-rank contention back into
/// the hot path the padding exists to keep flat).
struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

class MetricsRegistry;

/// Monotonic per-rank counter.  `add` is wait-free: one relaxed load
/// of the registry's enable flag plus one relaxed fetch_add on this
/// rank's private cell.
class Counter {
 public:
  void add(int rank, std::uint64_t delta = 1) {
    if constexpr (!kMetricsEnabled) {
      (void)rank;
      (void)delta;
      return;
    } else {
      if (!enabled_->load(std::memory_order_relaxed)) return;
      cells_[slot_of(rank)].value.fetch_add(delta, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t value(int rank) const {
    return cells_[slot_of(rank)].value.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::array<detail::PaddedCell, kRankSlots> cells_;
};

/// Per-rank gauge: last-set value, plus a monotonic-max variant for
/// high-watermarks.
class Gauge {
 public:
  void set(int rank, std::uint64_t value) {
    if constexpr (!kMetricsEnabled) {
      (void)rank;
      (void)value;
      return;
    } else {
      if (!enabled_->load(std::memory_order_relaxed)) return;
      cells_[slot_of(rank)].value.store(value, std::memory_order_relaxed);
    }
  }

  /// Raises the gauge to `value` if it is higher (high-watermark).
  void record_max(int rank, std::uint64_t value) {
    if constexpr (!kMetricsEnabled) {
      (void)rank;
      (void)value;
      return;
    } else {
      if (!enabled_->load(std::memory_order_relaxed)) return;
      auto& cell = cells_[slot_of(rank)].value;
      std::uint64_t seen = cell.load(std::memory_order_relaxed);
      while (seen < value &&
             !cell.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
      }
    }
  }

  [[nodiscard]] std::uint64_t value(int rank) const {
    return cells_[slot_of(rank)].value.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t max() const {
    std::uint64_t best = 0;
    for (const auto& c : cells_) {
      best = std::max(best, c.value.load(std::memory_order_relaxed));
    }
    return best;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::array<detail::PaddedCell, kRankSlots> cells_;
};

/// Fixed-bucket log-scale histogram for latencies and sizes: bucket k
/// counts values whose bit width is k (i.e. [2^(k-1), 2^k)), so 64
/// buckets cover the whole uint64 range with no configuration and a
/// branch-free index computation.  Per-rank slots are cache-line
/// padded like the other instruments.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(int rank, std::uint64_t value) {
    if constexpr (!kMetricsEnabled) {
      (void)rank;
      (void)value;
      return;
    } else {
      if (!enabled_->load(std::memory_order_relaxed)) return;
      auto& slot = slots_[slot_of(rank)];
      slot.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
      slot.count.fetch_add(1, std::memory_order_relaxed);
      slot.sum.fetch_add(value, std::memory_order_relaxed);
      std::uint64_t seen = slot.max.load(std::memory_order_relaxed);
      while (seen < value &&
             !slot.max.compare_exchange_weak(seen, value,
                                             std::memory_order_relaxed)) {
      }
    }
  }

  /// True when updates would currently be kept — lets callers skip
  /// expensive value acquisition (e.g. clock reads) when the registry
  /// is disabled.  A single relaxed load.
  [[nodiscard]] bool hot() const {
    if constexpr (!kMetricsEnabled) {
      return false;
    } else {
      return enabled_->load(std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t count(int rank) const {
    return slots_[slot_of(rank)].count.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum(int rank) const {
    return slots_[slot_of(rank)].sum.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] std::uint64_t total_sum() const;
  [[nodiscard]] std::uint64_t total_max() const;

  /// Bucket index of a value: its bit width (0 for 0).
  static constexpr std::size_t bucket_of(std::uint64_t value) {
    std::size_t width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    // A 64-bit value's width can be 64; the top bucket absorbs it.
    return width < kBuckets ? width : kBuckets - 1;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  const std::atomic<bool>* enabled_;
  std::array<Slot, kRankSlots> slots_;
};

/// RAII wall-clock timer recording its lifetime into a histogram.
/// When the target histogram is cold (registry disabled or metrics
/// compiled out) the clock is never read.
class ScopedTimer {
 public:
  ScopedTimer(Histogram& hist, int rank)
      : hist_(&hist), rank_(rank),
        start_(hist.hot() ? support::now_ns() : kCold) {}

  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records the elapsed time (once) and returns it; 0 when cold.
  support::TimeNs stop() {
    if (start_ == kCold) return 0;
    const auto elapsed = support::now_ns() - start_;
    hist_->record(rank_, static_cast<std::uint64_t>(elapsed > 0 ? elapsed : 0));
    start_ = kCold;
    return elapsed;
  }

 private:
  static constexpr support::TimeNs kCold = -1;

  Histogram* hist_;
  int rank_;
  support::TimeNs start_;
};

/// Point-in-time copy of one instrument's state.
struct MetricSnap {
  std::string name;
  InstrumentKind kind = InstrumentKind::kCounter;
  Unit unit = Unit::kCount;
  /// Counter/gauge: per-slot values.  Histogram: per-slot counts.
  std::array<std::uint64_t, kRankSlots> per_rank{};
  /// Histogram extras (totals across slots; zero otherwise).
  std::uint64_t hist_sum = 0;
  std::uint64_t hist_max = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  /// Sum over slots (for histograms: total sample count).
  [[nodiscard]] std::uint64_t total() const;
  /// The family prefix of the name ("mpi.calls.send" → "mpi").
  [[nodiscard]] std::string_view family() const;

  friend bool operator==(const MetricSnap&, const MetricSnap&) = default;
};

/// A diffable, renderable copy of a registry's instruments.
struct Snapshot {
  support::TimeNs taken_ns = 0;
  std::vector<MetricSnap> metrics;

  /// This snapshot minus `earlier`: counters and histograms subtract
  /// (clamped at zero so a reset between snapshots cannot produce
  /// wrap-around garbage), gauges keep this snapshot's value.  Metrics
  /// absent from `earlier` pass through unchanged.
  [[nodiscard]] Snapshot diff(const Snapshot& earlier) const;

  /// The named metric, or nullptr.
  [[nodiscard]] const MetricSnap* find(std::string_view name) const;

  /// Human-readable report, grouped by family.  With `rank`, per-rank
  /// columns show only that rank; otherwise every active rank.  With
  /// `family`, only that family is rendered.
  [[nodiscard]] std::string to_text(
      std::optional<int> rank = std::nullopt,
      std::optional<std::string_view> family = std::nullopt) const;

  /// Machine-readable JSON (round-trips through `from_json`).
  [[nodiscard]] std::string to_json() const;

  /// Parses `to_json` output; nullopt on malformed input.
  static std::optional<Snapshot> from_json(std::string_view json);
};

/// Accumulates snapshots into a time series: one column per metric
/// total, one row per snapshot, rendered as CSV by `str()`.  The
/// column set grows on the fly — a metric first seen on a later
/// snapshot gets a new column and earlier rows are back-filled with 0
/// (metrics used to be silently dropped once the first snapshot froze
/// the header; the telemetry heartbeat registers gauges lazily, so
/// late columns are now the common case).
class MetricsSeries {
 public:
  void add(const Snapshot& snapshot);
  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return columns_.size(); }

 private:
  struct Row {
    support::TimeNs t_ns = 0;
    /// Totals aligned to `columns_`; shorter than `columns_` when
    /// columns appeared after this row (rendered as 0).
    std::vector<std::uint64_t> values;
  };

  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// Historical name, kept for existing callers.
using TimeSeriesCsv = MetricsSeries;

/// Owns named instruments.  Creation/lookup takes a mutex and interns
/// by name (callers cache the returned reference); the instruments
/// themselves are lock-free and stable in memory for the registry's
/// lifetime.  `set_enabled(false)` turns every instrument's update
/// into the single-relaxed-load early-out.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in subsystem reports to.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, Unit unit = Unit::kNanoseconds);

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Zeroes every instrument (instrument identities stay valid).
  void reset();

  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::size_t instrument_count() const;

 private:
  struct Entry {
    std::string name;
    InstrumentKind kind;
    Unit unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& intern(std::string_view name, InstrumentKind kind, Unit unit);

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace tdbg::obs
