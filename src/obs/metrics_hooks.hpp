#pragma once

#include <array>

#include "mpi/hooks.hpp"
#include "obs/metrics.hpp"

/// \file metrics_hooks.hpp
/// Bridges the runtime's PMPI-style profiling interface to the metrics
/// registry.  Installing a `MetricsHooks` (usually via `HookFanout`,
/// next to the instrumentation session) gives every run per-rank call
/// counts, byte totals, and recv-block latency at a cost of a few
/// relaxed atomic increments per call — the self-observation layer the
/// paper's overhead discussion (Table 1) needs on our side.
///
/// Layering note: this header lives in `tdbg_obs`, which links only
/// `tdbg_support`.  It may include `mpi/hooks.hpp` because
/// `ProfilingHooks` is fully inline; it must not reference symbols
/// defined in the mpi library's .cpp files.

namespace tdbg::obs {

/// Profiling hook that folds every observed call into a
/// `MetricsRegistry`.  All instruments are interned at construction,
/// so the per-call path never takes the registry lock.
///
/// Metric families written (all prefixed `runtime.`):
///   - `runtime.calls.<kind>`   — per-rank call count per `CallKind`
///   - `runtime.bytes_sent`     — payload bytes passed to send calls
///   - `runtime.bytes_received` — payload bytes actually matched
///   - `runtime.recv_wildcards` — receives posted with ANY_SOURCE/TAG
///   - `runtime.recv_block_ns`  — wall time a rank spent inside recv
///   - `runtime.ranks_started` / `runtime.ranks_finished`
class MetricsHooks : public mpi::ProfilingHooks {
 public:
  static constexpr std::size_t kCallKinds =
      static_cast<std::size_t>(mpi::CallKind::kFinalize) + 1;

  explicit MetricsHooks(MetricsRegistry& registry = MetricsRegistry::global());

  void on_call_begin(const mpi::CallInfo& info) override;
  void on_call_end(const mpi::CallInfo& info,
                   const mpi::Status* status) override;
  void on_rank_start(mpi::Rank rank) override;
  void on_rank_finish(mpi::Rank rank) override;

 private:
  std::array<Counter*, kCallKinds> calls_{};
  Counter* bytes_sent_ = nullptr;
  Counter* bytes_received_ = nullptr;
  Counter* recv_wildcards_ = nullptr;
  Histogram* recv_block_ns_ = nullptr;
  Counter* ranks_started_ = nullptr;
  Counter* ranks_finished_ = nullptr;
};

/// Lower-cased call-kind token used in metric names ("send", "recv",
/// ...).  Local to obs so the library does not depend on the mpi
/// library's `call_kind_name` definition.
std::string_view call_kind_token(mpi::CallKind kind);

}  // namespace tdbg::obs
