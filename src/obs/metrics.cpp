#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace tdbg::obs {

std::string_view unit_name(Unit unit) {
  switch (unit) {
    case Unit::kCount: return "count";
    case Unit::kNanoseconds: return "ns";
    case Unit::kBytes: return "bytes";
  }
  return "?";
}

std::string_view instrument_kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s.count.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Histogram::total_sum() const {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s.sum.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Histogram::total_max() const {
  std::uint64_t best = 0;
  for (const auto& s : slots_) {
    best = std::max(best, s.max.load(std::memory_order_relaxed));
  }
  return best;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::intern(std::string_view name,
                                                InstrumentKind kind,
                                                Unit unit) {
  std::lock_guard lk(mu_);
  for (auto& e : entries_) {
    if (e->name == name) return *e;  // kind mismatch: first creation wins
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = kind;
  entry->unit = unit;
  switch (kind) {
    case InstrumentKind::kCounter:
      entry->counter.reset(new Counter(&enabled_));
      break;
    case InstrumentKind::kGauge:
      entry->gauge.reset(new Gauge(&enabled_));
      break;
    case InstrumentKind::kHistogram:
      entry->histogram.reset(new Histogram(&enabled_));
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *intern(name, InstrumentKind::kCounter, Unit::kCount).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *intern(name, InstrumentKind::kGauge, Unit::kCount).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Unit unit) {
  return *intern(name, InstrumentKind::kHistogram, unit).histogram;
}

std::size_t MetricsRegistry::instrument_count() const {
  std::lock_guard lk(mu_);
  return entries_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  for (auto& e : entries_) {
    for (std::size_t s = 0; s < kRankSlots; ++s) {
      if (e->counter) {
        e->counter->cells_[s].value.store(0, std::memory_order_relaxed);
      }
      if (e->gauge) {
        e->gauge->cells_[s].value.store(0, std::memory_order_relaxed);
      }
      if (e->histogram) {
        auto& slot = e->histogram->slots_[s];
        for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
        slot.count.store(0, std::memory_order_relaxed);
        slot.sum.store(0, std::memory_order_relaxed);
        slot.max.store(0, std::memory_order_relaxed);
      }
    }
  }
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  out.taken_ns = support::now_ns();
  std::lock_guard lk(mu_);
  out.metrics.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnap snap;
    snap.name = e->name;
    snap.kind = e->kind;
    snap.unit = e->unit;
    for (std::size_t s = 0; s < kRankSlots; ++s) {
      switch (e->kind) {
        case InstrumentKind::kCounter:
          snap.per_rank[s] =
              e->counter->cells_[s].value.load(std::memory_order_relaxed);
          break;
        case InstrumentKind::kGauge:
          snap.per_rank[s] =
              e->gauge->cells_[s].value.load(std::memory_order_relaxed);
          break;
        case InstrumentKind::kHistogram: {
          const auto& slot = e->histogram->slots_[s];
          snap.per_rank[s] = slot.count.load(std::memory_order_relaxed);
          snap.hist_sum += slot.sum.load(std::memory_order_relaxed);
          snap.hist_max = std::max(
              snap.hist_max, slot.max.load(std::memory_order_relaxed));
          for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            snap.buckets[b] +=
                slot.buckets[b].load(std::memory_order_relaxed);
          }
          break;
        }
      }
    }
    out.metrics.push_back(std::move(snap));
  }
  return out;
}

// --- Snapshot ---------------------------------------------------------------

std::uint64_t MetricSnap::total() const {
  std::uint64_t sum = 0;
  for (const auto v : per_rank) sum += v;
  return sum;
}

std::string_view MetricSnap::family() const {
  const auto dot = name.find('.');
  return dot == std::string::npos ? std::string_view(name)
                                  : std::string_view(name).substr(0, dot);
}

const MetricSnap* Snapshot::find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Snapshot Snapshot::diff(const Snapshot& earlier) const {
  const auto sub = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : 0;
  };
  Snapshot out;
  out.taken_ns = taken_ns;
  out.metrics.reserve(metrics.size());
  for (const auto& m : metrics) {
    const MetricSnap* base = earlier.find(m.name);
    MetricSnap d = m;
    if (base != nullptr && m.kind != InstrumentKind::kGauge) {
      for (std::size_t s = 0; s < kRankSlots; ++s) {
        d.per_rank[s] = sub(m.per_rank[s], base->per_rank[s]);
      }
      d.hist_sum = sub(m.hist_sum, base->hist_sum);
      // max is not diffable; keep the later window's observed max.
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        d.buckets[b] = sub(m.buckets[b], base->buckets[b]);
      }
    }
    out.metrics.push_back(std::move(d));
  }
  return out;
}

namespace {

/// "1234567" ns → "1.23ms"; bytes → "1.2MB"; counts stay plain.
std::string format_value(std::uint64_t v, Unit unit) {
  char buf[48];
  switch (unit) {
    case Unit::kNanoseconds:
      if (v >= 1000000000ull) {
        std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(v) * 1e-9);
      } else if (v >= 1000000ull) {
        std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(v) * 1e-6);
      } else if (v >= 1000ull) {
        std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(v) * 1e-3);
      } else {
        std::snprintf(buf, sizeof buf, "%lluns",
                      static_cast<unsigned long long>(v));
      }
      return buf;
    case Unit::kBytes:
      if (v >= 1048576ull) {
        std::snprintf(buf, sizeof buf, "%.1fMB",
                      static_cast<double>(v) / 1048576.0);
      } else if (v >= 1024ull) {
        std::snprintf(buf, sizeof buf, "%.1fKB",
                      static_cast<double>(v) / 1024.0);
      } else {
        std::snprintf(buf, sizeof buf, "%lluB",
                      static_cast<unsigned long long>(v));
      }
      return buf;
    case Unit::kCount:
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(v));
      return buf;
  }
  return "?";
}

}  // namespace

std::string Snapshot::to_text(std::optional<int> rank,
                              std::optional<std::string_view> family) const {
  // Group by family (in order of first appearance) so interleaved
  // intern order doesn't split a family across several headers.
  std::vector<std::string_view> families;
  for (const auto& m : metrics) {
    if (family && m.family() != *family) continue;
    if (std::find(families.begin(), families.end(), m.family()) ==
        families.end()) {
      families.push_back(m.family());
    }
  }

  std::ostringstream os;
  for (const auto fam : families) {
    bool wrote_header = false;
    for (const auto& m : metrics) {
      if (m.family() != fam) continue;
      // Histogram per-rank slots hold sample *counts*, not unit values.
      const auto slot_unit =
          m.kind == InstrumentKind::kHistogram ? Unit::kCount : m.unit;
      if (rank) {
        // Single-rank view: that rank's slot only.
        const auto v = m.per_rank[slot_of(*rank)];
        if (v == 0) continue;
        if (!wrote_header) {
          wrote_header = true;
          os << "== " << fam << " ==\n";
        }
        os << "  " << m.name << " = " << format_value(v, slot_unit);
        if (m.kind == InstrumentKind::kHistogram) os << " samples";
        os << "\n";
        continue;
      }
      if (m.total() == 0 && m.hist_sum == 0) continue;
      if (!wrote_header) {
        wrote_header = true;
        os << "== " << fam << " ==\n";
      }
      char line[128];
      if (m.kind == InstrumentKind::kHistogram) {
        const auto count = m.total();
        const auto avg = count == 0 ? 0 : m.hist_sum / count;
        std::snprintf(line, sizeof line,
                      "  %-34s count %-8llu avg %-10s max %s", m.name.c_str(),
                      static_cast<unsigned long long>(count),
                      format_value(avg, m.unit).c_str(),
                      format_value(m.hist_max, m.unit).c_str());
      } else if (m.kind == InstrumentKind::kGauge) {
        // A gauge's meaningful aggregate is the max, not the sum.
        const auto peak =
            *std::max_element(m.per_rank.begin(), m.per_rank.end());
        std::snprintf(line, sizeof line, "  %-34s peak %s", m.name.c_str(),
                      format_value(peak, m.unit).c_str());
      } else {
        std::snprintf(line, sizeof line, "  %-34s total %s", m.name.c_str(),
                      format_value(m.total(), m.unit).c_str());
      }
      os << line;
      // Per-rank strip: only ranks that contributed.
      bool first = true;
      for (std::size_t s = 1; s < kRankSlots; ++s) {
        if (m.per_rank[s] == 0) continue;
        os << (first ? "  | " : "  ") << "r" << rank_of_slot(s) << ":"
           << format_value(m.per_rank[s], slot_unit);
        first = false;
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"taken_ns\":" << taken_ns << ",\"metrics\":[";
  bool first_metric = true;
  for (const auto& m : metrics) {
    if (!first_metric) os << ",";
    first_metric = false;
    os << "{\"name\":\"" << m.name << "\",\"kind\":\""
       << instrument_kind_name(m.kind) << "\",\"unit\":\""
       << unit_name(m.unit) << "\",\"total\":" << m.total()
       << ",\"per_rank\":{";
    bool first_slot = true;
    for (std::size_t s = 0; s < kRankSlots; ++s) {
      if (m.per_rank[s] == 0) continue;
      if (!first_slot) os << ",";
      first_slot = false;
      os << "\"" << rank_of_slot(s) << "\":" << m.per_rank[s];
    }
    os << "}";
    if (m.kind == InstrumentKind::kHistogram) {
      os << ",\"sum\":" << m.hist_sum << ",\"max\":" << m.hist_max
         << ",\"buckets\":{";
      bool first_bucket = true;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (m.buckets[b] == 0) continue;
        if (!first_bucket) os << ",";
        first_bucket = false;
        os << "\"" << b << "\":" << m.buckets[b];
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

// --- JSON parsing (exactly the grammar to_json emits) ----------------------

namespace {

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out.push_back(text_[pos_++]);
    }
    if (!consume('"')) return std::nullopt;
    return out;
  }

  std::optional<std::int64_t> integer() {
    skip_ws();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      return std::nullopt;
    }
    std::int64_t v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      v = v * 10 + (text_[pos_++] - '0');
    }
    return negative ? -v : v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<InstrumentKind> parse_kind(std::string_view s) {
  if (s == "counter") return InstrumentKind::kCounter;
  if (s == "gauge") return InstrumentKind::kGauge;
  if (s == "histogram") return InstrumentKind::kHistogram;
  return std::nullopt;
}

std::optional<Unit> parse_unit(std::string_view s) {
  if (s == "count") return Unit::kCount;
  if (s == "ns") return Unit::kNanoseconds;
  if (s == "bytes") return Unit::kBytes;
  return std::nullopt;
}

/// Parses {"<int-key>": <int>, ...} into `put(key, value)` calls.
template <typename Put>
bool parse_int_map(JsonCursor& in, const Put& put) {
  if (!in.consume('{')) return false;
  if (in.consume('}')) return true;
  for (;;) {
    const auto key = in.string();
    if (!key || !in.consume(':')) return false;
    const auto value = in.integer();
    if (!value) return false;
    std::int64_t k = 0;
    try {
      k = std::stoll(*key);
    } catch (...) {
      return false;
    }
    if (!put(k, static_cast<std::uint64_t>(*value))) return false;
    if (in.consume('}')) return true;
    if (!in.consume(',')) return false;
  }
}

}  // namespace

std::optional<Snapshot> Snapshot::from_json(std::string_view json) {
  JsonCursor in(json);
  Snapshot out;
  if (!in.consume('{')) return std::nullopt;
  // "taken_ns": N
  if (auto key = in.string(); !key || *key != "taken_ns") return std::nullopt;
  if (!in.consume(':')) return std::nullopt;
  if (auto t = in.integer()) {
    out.taken_ns = *t;
  } else {
    return std::nullopt;
  }
  if (!in.consume(',')) return std::nullopt;
  if (auto key = in.string(); !key || *key != "metrics") return std::nullopt;
  if (!in.consume(':') || !in.consume('[')) return std::nullopt;
  if (in.consume(']')) {
    return in.consume('}') ? std::optional<Snapshot>(std::move(out))
                           : std::nullopt;
  }
  for (;;) {
    if (!in.consume('{')) return std::nullopt;
    MetricSnap m;
    for (;;) {
      const auto key = in.string();
      if (!key || !in.consume(':')) return std::nullopt;
      if (*key == "name") {
        const auto v = in.string();
        if (!v) return std::nullopt;
        m.name = *v;
      } else if (*key == "kind") {
        const auto v = in.string();
        if (!v) return std::nullopt;
        const auto kind = parse_kind(*v);
        if (!kind) return std::nullopt;
        m.kind = *kind;
      } else if (*key == "unit") {
        const auto v = in.string();
        if (!v) return std::nullopt;
        const auto unit = parse_unit(*v);
        if (!unit) return std::nullopt;
        m.unit = *unit;
      } else if (*key == "total") {
        if (!in.integer()) return std::nullopt;  // derived; recomputed
      } else if (*key == "per_rank") {
        if (!parse_int_map(in, [&m](std::int64_t rank, std::uint64_t v) {
              if (rank < -1 || rank >= kRankSlots - 1) return false;
              m.per_rank[slot_of(static_cast<int>(rank))] = v;
              return true;
            })) {
          return std::nullopt;
        }
      } else if (*key == "sum") {
        const auto v = in.integer();
        if (!v) return std::nullopt;
        m.hist_sum = static_cast<std::uint64_t>(*v);
      } else if (*key == "max") {
        const auto v = in.integer();
        if (!v) return std::nullopt;
        m.hist_max = static_cast<std::uint64_t>(*v);
      } else if (*key == "buckets") {
        if (!parse_int_map(in, [&m](std::int64_t b, std::uint64_t v) {
              if (b < 0 ||
                  b >= static_cast<std::int64_t>(Histogram::kBuckets)) {
                return false;
              }
              m.buckets[static_cast<std::size_t>(b)] = v;
              return true;
            })) {
          return std::nullopt;
        }
      } else {
        return std::nullopt;
      }
      if (in.consume('}')) break;
      if (!in.consume(',')) return std::nullopt;
    }
    out.metrics.push_back(std::move(m));
    if (in.consume(']')) break;
    if (!in.consume(',')) return std::nullopt;
  }
  if (!in.consume('}')) return std::nullopt;
  return out;
}

// --- MetricsSeries ----------------------------------------------------------

void MetricsSeries::add(const Snapshot& snapshot) {
  // Register any metric this snapshot introduces; rows already taken
  // simply stay shorter than the column list and render as 0.
  for (const auto& m : snapshot.metrics) {
    bool known = false;
    for (const auto& c : columns_) {
      if (c == m.name) {
        known = true;
        break;
      }
    }
    if (!known) columns_.push_back(m.name);
  }
  Row row;
  row.t_ns = snapshot.taken_ns;
  row.values.reserve(columns_.size());
  for (const auto& name : columns_) {
    const auto* m = snapshot.find(name);
    row.values.push_back(m == nullptr ? 0 : m->total());
  }
  rows_.push_back(std::move(row));
}

std::string MetricsSeries::str() const {
  std::ostringstream os;
  os << "t_ns";
  for (const auto& c : columns_) os << "," << c;
  os << "\n";
  for (const auto& row : rows_) {
    os << row.t_ns;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      os << "," << (i < row.values.size() ? row.values[i] : 0);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace tdbg::obs
