#include "obs/metrics_hooks.hpp"

#include <string>

#include "support/clock.hpp"

namespace tdbg::obs {

std::string_view call_kind_token(mpi::CallKind kind) {
  using mpi::CallKind;
  switch (kind) {
    case CallKind::kSend: return "send";
    case CallKind::kSsend: return "ssend";
    case CallKind::kRecv: return "recv";
    case CallKind::kProbe: return "probe";
    case CallKind::kBarrier: return "barrier";
    case CallKind::kBcast: return "bcast";
    case CallKind::kReduce: return "reduce";
    case CallKind::kAllreduce: return "allreduce";
    case CallKind::kGather: return "gather";
    case CallKind::kScatter: return "scatter";
    case CallKind::kAlltoall: return "alltoall";
    case CallKind::kInit: return "init";
    case CallKind::kFinalize: return "finalize";
  }
  return "unknown";
}

MetricsHooks::MetricsHooks(MetricsRegistry& registry) {
  for (std::size_t k = 0; k < kCallKinds; ++k) {
    const auto token = call_kind_token(static_cast<mpi::CallKind>(k));
    calls_[k] = &registry.counter("runtime.calls." + std::string(token));
  }
  bytes_sent_ = &registry.counter("runtime.bytes_sent");
  bytes_received_ = &registry.counter("runtime.bytes_received");
  recv_wildcards_ = &registry.counter("runtime.recv_wildcards");
  recv_block_ns_ =
      &registry.histogram("runtime.recv_block_ns", Unit::kNanoseconds);
  ranks_started_ = &registry.counter("runtime.ranks_started");
  ranks_finished_ = &registry.counter("runtime.ranks_finished");
}

namespace {

// A rank thread has at most one receive in flight (recvs don't nest),
// so a single thread-local begin stamp is enough; shared across
// MetricsHooks instances, which only means duplicate instances time
// from the innermost begin.
thread_local support::TimeNs t_recv_begin = 0;

}  // namespace

void MetricsHooks::on_call_begin(const mpi::CallInfo& info) {
  if constexpr (!kMetricsEnabled) return;
  if (info.kind != mpi::CallKind::kRecv || !recv_block_ns_->hot()) return;
  t_recv_begin = support::now_ns();
}

void MetricsHooks::on_call_end(const mpi::CallInfo& info,
                               const mpi::Status* status) {
  if constexpr (!kMetricsEnabled) return;
  calls_[static_cast<std::size_t>(info.kind)]->add(info.rank);
  switch (info.kind) {
    case mpi::CallKind::kSend:
    case mpi::CallKind::kSsend:
      bytes_sent_->add(info.rank, info.bytes);
      break;
    case mpi::CallKind::kRecv:
      if (status != nullptr) bytes_received_->add(info.rank, status->bytes);
      if (info.peer == mpi::kAnySource || info.tag == mpi::kAnyTag) {
        recv_wildcards_->add(info.rank);
      }
      if (recv_block_ns_->hot() && t_recv_begin != 0) {
        recv_block_ns_->record(
            info.rank,
            static_cast<std::uint64_t>(support::now_ns() - t_recv_begin));
        t_recv_begin = 0;
      }
      break;
    default:
      break;
  }
}

void MetricsHooks::on_rank_start(mpi::Rank rank) {
  if constexpr (!kMetricsEnabled) return;
  ranks_started_->add(rank);
}

void MetricsHooks::on_rank_finish(mpi::Rank rank) {
  if constexpr (!kMetricsEnabled) return;
  ranks_finished_->add(rank);
}

}  // namespace tdbg::obs
