#pragma once

#include <string>
#include <vector>

/// \file export.hpp
/// Generic graph description plus DOT and VCG writers.
///
/// The paper displays its graphs with `xvcg` ("The graph was converted
/// to VCG format displayed with the xvcg graph layout tool", Fig. 9);
/// the VCG writer here emits that format.  DOT is provided for modern
/// tooling.

namespace tdbg::graph {

/// A node of an exportable graph.
struct ExportNode {
  std::string id;     ///< unique identifier
  std::string label;  ///< display label
  std::string group;  ///< optional cluster (e.g. "rank 3"), may be empty
};

/// A directed edge of an exportable graph.
struct ExportEdge {
  std::string from;
  std::string to;
  std::string label;  ///< optional edge label (e.g. call count)
};

/// A displayable graph, produced by the specific graph types'
/// `to_export()` methods.
struct ExportGraph {
  std::string title;
  std::vector<ExportNode> nodes;
  std::vector<ExportEdge> edges;
};

/// Renders the graph in Graphviz DOT format.
std::string to_dot(const ExportGraph& graph);

/// Renders the graph in VCG format (the paper's xvcg tool).
std::string to_vcg(const ExportGraph& graph);

}  // namespace tdbg::graph
