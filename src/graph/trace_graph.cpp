#include "graph/trace_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace tdbg::graph {

std::string node_label(const NodeId& id,
                       const trace::ConstructRegistry& constructs) {
  std::ostringstream os;
  if (id.kind == NodeId::Kind::kChannel) {
    os << "ch " << id.rank << "->" << id.peer;
  } else {
    os << "r" << id.rank << ":";
    if (id.construct == trace::kNoConstruct) {
      os << "<main>";
    } else {
      os << constructs.info(id.construct).name;
    }
  }
  return os.str();
}

TraceGraph::TraceGraph(int num_ranks, std::size_t merge_limit)
    : num_ranks_(num_ranks), merge_limit_(std::max<std::size_t>(2, merge_limit)),
      stacks_(static_cast<std::size_t>(num_ranks)) {
  TDBG_CHECK(num_ranks > 0, "trace graph needs at least one rank");
}

void TraceGraph::add_arc(const NodeId& from, const NodeId& to, ArcKind kind,
                         mpi::Rank marker_rank, std::uint64_t marker) {
  auto& group = arcs_[{from, to, kind}];
  group.push_back(Arc{from, to, kind, 1, marker_rank, marker, marker});
  if (group.size() > merge_limit_) {
    // Dissemination: merge every other arc with the previous one,
    // halving the stored count while preserving totals and marker
    // coverage.
    std::vector<Arc> merged;
    merged.reserve(group.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < group.size(); i += 2) {
      Arc a = group[i];
      const Arc& b = group[i + 1];
      a.count += b.count;
      a.marker_lo = std::min(a.marker_lo, b.marker_lo);
      a.marker_hi = std::max(a.marker_hi, b.marker_hi);
      merged.push_back(a);
    }
    if (group.size() % 2 == 1) merged.push_back(group.back());
    group = std::move(merged);
  }
}

void TraceGraph::add_event(const trace::Event& event) {
  auto& stack = stacks_.at(static_cast<std::size_t>(event.rank));
  const auto current_function = [&]() -> trace::ConstructId {
    return stack.empty() ? event.construct : stack.back();
  };
  switch (event.kind) {
    case trace::EventKind::kEnter: {
      const NodeId callee{NodeId::Kind::kFunction, event.rank, event.construct,
                          -1};
      const NodeId caller{NodeId::Kind::kFunction, event.rank,
                          stack.empty() ? trace::kNoConstruct : stack.back(),
                          -1};
      add_arc(caller, callee, ArcKind::kCall, event.rank, event.marker);
      stack.push_back(event.construct);
      break;
    }
    case trace::EventKind::kExit: {
      if (!stack.empty()) stack.pop_back();
      break;
    }
    case trace::EventKind::kSend: {
      const NodeId fn{NodeId::Kind::kFunction, event.rank, current_function(),
                      -1};
      const NodeId ch{NodeId::Kind::kChannel, event.rank,
                      trace::kNoConstruct, event.peer};
      add_arc(fn, ch, ArcKind::kSend, event.rank, event.marker);
      break;
    }
    case trace::EventKind::kRecv: {
      const NodeId ch{NodeId::Kind::kChannel, event.peer,
                      trace::kNoConstruct, event.rank};
      const NodeId fn{NodeId::Kind::kFunction, event.rank, current_function(),
                      -1};
      add_arc(ch, fn, ArcKind::kRecv, event.rank, event.marker);
      break;
    }
    case trace::EventKind::kCollective:
    case trace::EventKind::kCompute:
    case trace::EventKind::kMark:
    case trace::EventKind::kFaultInjected:
      break;  // not part of the trace-graph abstraction
  }
}

TraceGraph TraceGraph::from_trace(const trace::Trace& trace,
                                  std::size_t merge_limit) {
  obs::ScopedTimer timer(
      obs::MetricsRegistry::global().histogram("analysis.graph_build_ns",
                                               obs::Unit::kNanoseconds),
      /*rank=*/-1);
  TraceGraph g(trace.num_ranks(), merge_limit);
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    trace.for_each_rank_event(
        r, [&](std::size_t, const trace::Event& e) { g.add_event(e); });
  }
  return g;
}

std::size_t TraceGraph::node_count() const {
  std::set<NodeId> nodes;
  for (const auto& [key, group] : arcs_) {
    nodes.insert(std::get<0>(key));
    nodes.insert(std::get<1>(key));
  }
  return nodes.size();
}

std::size_t TraceGraph::arc_count() const {
  std::size_t n = 0;
  for (const auto& [key, group] : arcs_) n += group.size();
  return n;
}

std::uint64_t TraceGraph::operation_count() const {
  std::uint64_t n = 0;
  for (const auto& [key, group] : arcs_) {
    for (const auto& arc : group) n += arc.count;
  }
  return n;
}

std::vector<Arc> TraceGraph::arcs_between(const NodeId& from, const NodeId& to,
                                          ArcKind kind) const {
  const auto it = arcs_.find({from, to, kind});
  return it == arcs_.end() ? std::vector<Arc>{} : it->second;
}

std::vector<std::size_t> TraceGraph::expand_arc(const trace::Trace& trace,
                                                const Arc& arc) const {
  std::vector<std::size_t> hits;
  // Rescan this rank's events, replaying the call stack so that the
  // "function performing" each operation is known, and collect the
  // operations the merged arc summarizes.
  std::vector<trace::ConstructId> stack;
  trace.for_each_rank_event(
      arc.marker_rank, [&](std::size_t i, const trace::Event& e) {
        const auto current = [&]() -> trace::ConstructId {
          return stack.empty() ? e.construct : stack.back();
        };
        const bool in_range =
            e.marker >= arc.marker_lo && e.marker <= arc.marker_hi;
        switch (e.kind) {
          case trace::EventKind::kEnter:
            if (in_range && arc.kind == ArcKind::kCall &&
                e.construct == arc.to.construct &&
                (stack.empty() ? trace::kNoConstruct : stack.back()) ==
                    arc.from.construct) {
              hits.push_back(i);
            }
            stack.push_back(e.construct);
            break;
          case trace::EventKind::kExit:
            if (!stack.empty()) stack.pop_back();
            break;
          case trace::EventKind::kSend:
            if (in_range && arc.kind == ArcKind::kSend &&
                e.peer == arc.to.peer && current() == arc.from.construct) {
              hits.push_back(i);
            }
            break;
          case trace::EventKind::kRecv:
            if (in_range && arc.kind == ArcKind::kRecv &&
                e.peer == arc.from.rank && current() == arc.to.construct) {
              hits.push_back(i);
            }
            break;
          default:
            break;
        }
      });
  return hits;
}

ExportGraph TraceGraph::to_export(
    const trace::ConstructRegistry& constructs) const {
  ExportGraph out;
  out.title = "trace graph";
  std::set<NodeId> nodes;
  for (const auto& [key, group] : arcs_) {
    nodes.insert(std::get<0>(key));
    nodes.insert(std::get<1>(key));
  }
  for (const auto& id : nodes) {
    ExportNode n;
    n.id = node_label(id, constructs);
    n.label = n.id;
    if (id.kind == NodeId::Kind::kFunction) {
      n.group = "rank " + std::to_string(id.rank);
    }
    out.nodes.push_back(std::move(n));
  }
  for (const auto& [key, group] : arcs_) {
    for (const auto& arc : group) {
      ExportEdge e;
      e.from = node_label(arc.from, constructs);
      e.to = node_label(arc.to, constructs);
      if (arc.count > 1) e.label = "x" + std::to_string(arc.count);
      out.edges.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace tdbg::graph
