#include "graph/export.hpp"

#include <map>
#include <sstream>

#include "support/strings.hpp"

namespace tdbg::graph {

std::string to_dot(const ExportGraph& graph) {
  std::ostringstream os;
  os << "digraph \"" << support::escape_label(graph.title) << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

  // Group nodes into DOT clusters when groups are present.
  std::map<std::string, std::vector<const ExportNode*>> groups;
  for (const auto& n : graph.nodes) groups[n.group].push_back(&n);

  int cluster = 0;
  for (const auto& [group, nodes] : groups) {
    const bool clustered = !group.empty();
    if (clustered) {
      os << "  subgraph cluster_" << cluster++ << " {\n";
      os << "    label=\"" << support::escape_label(group) << "\";\n";
    }
    for (const auto* n : nodes) {
      os << (clustered ? "    " : "  ") << '"'
         << support::escape_label(n->id) << "\" [label=\""
         << support::escape_label(n->label) << "\"];\n";
    }
    if (clustered) os << "  }\n";
  }
  for (const auto& e : graph.edges) {
    os << "  \"" << support::escape_label(e.from) << "\" -> \""
       << support::escape_label(e.to) << '"';
    if (!e.label.empty()) {
      os << " [label=\"" << support::escape_label(e.label) << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_vcg(const ExportGraph& graph) {
  std::ostringstream os;
  os << "graph: {\n";
  os << "  title: \"" << support::escape_label(graph.title) << "\"\n";
  os << "  layoutalgorithm: minbackward\n";
  os << "  display_edge_labels: yes\n";
  for (const auto& n : graph.nodes) {
    os << "  node: { title: \"" << support::escape_label(n.id)
       << "\" label: \"" << support::escape_label(n.label) << "\" }\n";
  }
  for (const auto& e : graph.edges) {
    os << "  edge: { sourcename: \"" << support::escape_label(e.from)
       << "\" targetname: \"" << support::escape_label(e.to) << '"';
    if (!e.label.empty()) {
      os << " label: \"" << support::escape_label(e.label) << '"';
    }
    os << " }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace tdbg::graph
