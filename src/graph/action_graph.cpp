#include "graph/action_graph.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/executor.hpp"

namespace tdbg::graph {

ActionGraph ActionGraph::from_trace(const trace::Trace& trace) {
  ActionGraph g;
  g.per_rank_.resize(static_cast<std::size_t>(trace.num_ranks()));
  // Run-collapsing is a per-rank fold over that rank's program order;
  // each task owns its `per_rank_` slot, so ranks build concurrently
  // with no shared state and a scheduling-independent result.
  exec::Executor::global().parallel_for(
      g.per_rank_.size(), "graph.actions", [&](std::size_t ri) {
        const auto r = static_cast<mpi::Rank>(ri);
        auto& actions = g.per_rank_[ri];
        std::vector<trace::ConstructId> stack;
        trace.for_each_rank_event(r, [&](std::size_t, const trace::Event& e) {
          if (e.kind == trace::EventKind::kExit) {
            if (!stack.empty()) stack.pop_back();
            return;
          }
          const auto parent = stack.empty() ? trace::kNoConstruct : stack.back();
          // Extend the previous action when this operation continues
          // the same run (same parent activation, same construct,
          // same kind).
          if (!actions.empty()) {
            auto& last = actions.back();
            if (last.parent == parent && last.construct == e.construct &&
                last.kind == e.kind) {
              ++last.count;
              last.marker_hi = e.marker;
              if (e.kind == trace::EventKind::kEnter) {
                stack.push_back(e.construct);
              }
              return;
            }
          }
          actions.push_back(
              Action{r, parent, e.construct, e.kind, 1, e.marker, e.marker});
          if (e.kind == trace::EventKind::kEnter) stack.push_back(e.construct);
        });
      });
  return g;
}

const std::vector<Action>& ActionGraph::actions(mpi::Rank rank) const {
  return per_rank_.at(static_cast<std::size_t>(rank));
}

std::size_t ActionGraph::total_actions() const {
  std::size_t n = 0;
  for (const auto& v : per_rank_) n += v.size();
  return n;
}

std::uint64_t ActionGraph::total_operations() const {
  std::uint64_t n = 0;
  for (const auto& v : per_rank_) {
    for (const auto& a : v) n += a.count;
  }
  return n;
}

ExportGraph ActionGraph::to_export(
    const trace::ConstructRegistry& constructs) const {
  ExportGraph out;
  out.title = "action graph";
  for (std::size_t r = 0; r < per_rank_.size(); ++r) {
    const auto& actions = per_rank_[r];
    std::string prev;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      const auto& a = actions[i];
      std::ostringstream id;
      id << "r" << r << "a" << i;
      std::ostringstream label;
      label << trace::event_kind_name(a.kind) << " ";
      label << (a.construct == trace::kNoConstruct
                    ? "?"
                    : constructs.info(a.construct).name);
      if (a.count > 1) label << " x" << a.count;
      out.nodes.push_back(
          ExportNode{id.str(), label.str(), "rank " + std::to_string(r)});
      if (!prev.empty()) out.edges.push_back(ExportEdge{prev, id.str(), {}});
      prev = id.str();
    }
  }
  return out;
}

}  // namespace tdbg::graph
