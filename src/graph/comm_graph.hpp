#pragma once

#include <limits>
#include <utility>
#include <vector>

#include "graph/export.hpp"
#include "trace/trace.hpp"

/// \file comm_graph.hpp
/// The communication graph (paper §3.2/Fig. 4, §4.4): "Each node
/// corresponds to one or two messages.  The arcs describe causality of
/// messages."
///
/// A node is a matched (send, receive) pair — added "when a send or
/// receive is matched" (§4.4) — or a lone unmatched send/receive,
/// which is exactly what the debugger's communication supervision
/// surfaces to the user.  Arcs are the per-process covering relation
/// of message causality: consecutive message endpoints on the same
/// rank connect their messages.

namespace tdbg::graph {

/// Sentinel event index for the missing half of an unmatched message.
inline constexpr std::size_t kNoEvent = std::numeric_limits<std::size_t>::max();

/// One message (or half of one, when unmatched).
struct MessageNode {
  std::size_t send_event = kNoEvent;  ///< trace index of the send record
  std::size_t recv_event = kNoEvent;  ///< trace index of the receive record
  mpi::Rank src = -1;
  mpi::Rank dst = -1;
  mpi::Tag tag = mpi::kAnyTag;

  [[nodiscard]] bool matched() const {
    return send_event != kNoEvent && recv_event != kNoEvent;
  }
};

/// The communication graph of one trace.
///
/// Constructed from prebuilt parts by `analysis::compute_comm_graph`
/// (the fused-sweep pass behind `analysis::Session::comm_graph()`);
/// the graph layer itself never scans the trace or matches messages.
class CommGraph {
 public:
  CommGraph() = default;
  CommGraph(std::vector<MessageNode> nodes,
            std::vector<std::pair<std::size_t, std::size_t>> arcs)
      : nodes_(std::move(nodes)), arcs_(std::move(arcs)) {}

  [[nodiscard]] const std::vector<MessageNode>& nodes() const { return nodes_; }

  /// Causality arcs as (from, to) node indices.
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>& arcs()
      const {
    return arcs_;
  }

  /// Node indices of unmatched sends (sent, never received) — the list
  /// §4.4 keeps for the user.
  [[nodiscard]] std::vector<std::size_t> unmatched_sends() const;

  /// Node indices of receives with no recorded send.
  [[nodiscard]] std::vector<std::size_t> unmatched_recvs() const;

  /// Exportable view (Fig. 4).
  [[nodiscard]] ExportGraph to_export() const;

 private:
  std::vector<MessageNode> nodes_;
  std::vector<std::pair<std::size_t, std::size_t>> arcs_;
};

}  // namespace tdbg::graph
