#pragma once

#include <map>
#include <optional>
#include <vector>

#include "graph/export.hpp"
#include "graph/trace_graph.hpp"

/// \file call_graph.hpp
/// The dynamic call graph (paper §3.2, Fig. 9): the projection of the
/// trace graph onto one process — function nodes and caller → callee
/// arcs with multiplicities.  "Multiple arcs show multiple function
/// calls.  The number of calls per arc is adjustable" (Fig. 9): the
/// `calls_per_arc` knob groups that many calls into one displayed arc.

namespace tdbg::graph {

/// One caller → callee relation with its call count.
struct CallEdge {
  trace::ConstructId caller = trace::kNoConstruct;  ///< kNoConstruct = rank root
  trace::ConstructId callee = trace::kNoConstruct;
  std::uint64_t calls = 0;
};

/// A per-rank (or merged) dynamic call graph.
class CallGraph {
 public:
  CallGraph() = default;

  /// Projects the trace graph onto `rank`; pass nullopt to merge every
  /// rank into one graph (Fig. 9 shows the merged Strassen graph).
  static CallGraph project(const TraceGraph& graph,
                           std::optional<mpi::Rank> rank);

  /// Builds directly from a trace (convenience).
  static CallGraph from_trace(const trace::Trace& trace,
                              std::optional<mpi::Rank> rank);

  /// The edges, sorted by (caller, callee).
  [[nodiscard]] const std::vector<CallEdge>& edges() const { return edges_; }

  /// Total calls of `callee` from anywhere.
  [[nodiscard]] std::uint64_t call_count(trace::ConstructId callee) const;

  /// Number of distinct functions appearing in the graph.
  [[nodiscard]] std::size_t function_count() const;

  /// Exportable view; each displayed arc stands for `calls_per_arc`
  /// calls (the Fig. 9 knob) — an edge with 12 calls and
  /// calls_per_arc=5 renders 3 parallel arcs (5+5+2).
  [[nodiscard]] ExportGraph to_export(
      const trace::ConstructRegistry& constructs,
      std::uint64_t calls_per_arc = 0) const;

 private:
  std::vector<CallEdge> edges_;
};

}  // namespace tdbg::graph
