#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/export.hpp"
#include "trace/trace.hpp"

/// \file trace_graph.hpp
/// The *trace graph* — the paper's graph abstraction of execution
/// history (§3.2, §4.3).
///
/// Vertices: one node per (function, process) plus one node per
/// communication channel (one channel per ordered pair of processes).
/// Arcs: one per function call (caller → callee) and one per message
/// operation (sending function → channel; channel → receiving
/// function).
///
/// Size control — the paper's *dissemination technique*: "if the
/// number of arcs incident to a node exceeds a limit, we merge every
/// other arc with the previous one".  Parallel arcs (same endpoints)
/// carry a multiplicity and a marker interval; when their number
/// between one pair of endpoints exceeds the limit, adjacent pairs are
/// merged (halving the count), trading resolution for space.  Zooming
/// back in rescans the relevant part of the trace
/// (`expand_arcs`) to reconstruct the merged individual arcs — the
/// number of arcs stored is thereby independent of execution length.

namespace tdbg::graph {

/// Node identity within a trace graph.
struct NodeId {
  enum class Kind : std::uint8_t { kFunction, kChannel } kind = Kind::kFunction;
  // Function node: rank + construct.  Channel node: rank = src, peer = dst.
  mpi::Rank rank = 0;
  trace::ConstructId construct = trace::kNoConstruct;  ///< function nodes
  mpi::Rank peer = -1;                                 ///< channel nodes

  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

/// What an arc represents.
enum class ArcKind : std::uint8_t {
  kCall,  ///< function call (caller → callee, same rank)
  kSend,  ///< sending function → channel
  kRecv,  ///< channel → receiving function
};

/// A (possibly merged) arc: `count` underlying operations whose
/// execution markers lie in [marker_lo, marker_hi] on `marker_rank`.
struct Arc {
  NodeId from;
  NodeId to;
  ArcKind kind = ArcKind::kCall;
  std::uint64_t count = 1;
  mpi::Rank marker_rank = 0;
  std::uint64_t marker_lo = 0;
  std::uint64_t marker_hi = 0;
};

/// The trace graph.  Built online (event by event) so the debugger can
/// maintain it as execution progresses (§4.3: "a trace graph which is
/// built as the execution is running").
class TraceGraph {
 public:
  /// \param num_ranks  world size
  /// \param merge_limit max parallel arcs kept per (from, to, kind)
  ///        triple before dissemination merges adjacent pairs
  explicit TraceGraph(int num_ranks, std::size_t merge_limit = 16);

  /// Feeds one event.  Call in per-rank program order (any interleaving
  /// across ranks is fine).
  void add_event(const trace::Event& event);

  /// Convenience: builds the graph from a complete trace.
  static TraceGraph from_trace(const trace::Trace& trace,
                               std::size_t merge_limit = 16);

  /// Number of distinct nodes materialized so far.
  [[nodiscard]] std::size_t node_count() const;

  /// Number of stored (post-merge) arcs.
  [[nodiscard]] std::size_t arc_count() const;

  /// Total operations represented (sum of arc counts) — unaffected by
  /// dissemination.
  [[nodiscard]] std::uint64_t operation_count() const;

  /// All stored arcs between `from` and `to` of the given kind, in
  /// marker order.
  [[nodiscard]] std::vector<Arc> arcs_between(const NodeId& from,
                                              const NodeId& to,
                                              ArcKind kind) const;

  /// All stored arcs.
  [[nodiscard]] const std::map<std::tuple<NodeId, NodeId, ArcKind>,
                               std::vector<Arc>>&
  arc_groups() const {
    return arcs_;
  }

  /// Zoom: reconstructs the individual operations a merged arc stands
  /// for by rescanning the trace for events of `arc.marker_rank` with
  /// markers in the arc's interval that contribute to (from, to, kind).
  /// Returns trace event indices.
  [[nodiscard]] std::vector<std::size_t> expand_arc(
      const trace::Trace& trace, const Arc& arc) const;

  /// Exportable view (function nodes grouped per rank).
  [[nodiscard]] ExportGraph to_export(const trace::ConstructRegistry& constructs) const;

  [[nodiscard]] int num_ranks() const { return num_ranks_; }
  [[nodiscard]] std::size_t merge_limit() const { return merge_limit_; }

 private:
  void add_arc(const NodeId& from, const NodeId& to, ArcKind kind,
               mpi::Rank marker_rank, std::uint64_t marker);

  int num_ranks_;
  std::size_t merge_limit_;
  std::vector<std::vector<trace::ConstructId>> stacks_;  ///< per-rank call stack
  std::map<std::tuple<NodeId, NodeId, ArcKind>, std::vector<Arc>> arcs_;
};

/// Human-readable node label ("rank3:MatrSend", "ch 0->7").
std::string node_label(const NodeId& id,
                       const trace::ConstructRegistry& constructs);

}  // namespace tdbg::graph
