#pragma once

#include <string>
#include <vector>

#include "graph/export.hpp"
#include "trace/trace.hpp"

/// \file action_graph.hpp
/// The action graph (paper §4.4): "For every function, the calls made
/// while the function is active are classified into actions and the
/// call graph is transformed into an actions graph.  The action graph
/// represents history with less resolution than the time-space diagram
/// and makes it more understandable."
///
/// An *action* summarizes a maximal run of consecutive same-construct
/// operations performed directly inside one function activation — e.g.
/// the master's distribution loop collapses to "MatrSend ×14" instead
/// of fourteen separate events.

namespace tdbg::graph {

/// One action: `count` consecutive operations of `construct` inside an
/// activation of `parent` on `rank`.
struct Action {
  mpi::Rank rank = 0;
  trace::ConstructId parent = trace::kNoConstruct;
  trace::ConstructId construct = trace::kNoConstruct;
  trace::EventKind kind = trace::EventKind::kEnter;
  std::uint64_t count = 0;
  std::uint64_t marker_lo = 0;  ///< markers covered (for zoom-back)
  std::uint64_t marker_hi = 0;
};

/// The per-rank action sequences of a trace.
class ActionGraph {
 public:
  static ActionGraph from_trace(const trace::Trace& trace);

  /// Actions of one rank, in execution order.
  [[nodiscard]] const std::vector<Action>& actions(mpi::Rank rank) const;

  /// Total actions across ranks.
  [[nodiscard]] std::size_t total_actions() const;

  /// Total operations summarized (sum of counts).
  [[nodiscard]] std::uint64_t total_operations() const;

  /// Exportable view: per rank, a chain of action nodes in order.
  [[nodiscard]] ExportGraph to_export(
      const trace::ConstructRegistry& constructs) const;

 private:
  std::vector<std::vector<Action>> per_rank_;
};

}  // namespace tdbg::graph
