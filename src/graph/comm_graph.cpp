#include "graph/comm_graph.hpp"

#include <sstream>

namespace tdbg::graph {

std::vector<std::size_t> CommGraph::unmatched_sends() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].send_event != kNoEvent && nodes_[i].recv_event == kNoEvent) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::size_t> CommGraph::unmatched_recvs() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].send_event == kNoEvent && nodes_[i].recv_event != kNoEvent) {
      out.push_back(i);
    }
  }
  return out;
}

ExportGraph CommGraph::to_export() const {
  ExportGraph out;
  out.title = "communication graph";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    std::ostringstream label;
    label << "m" << i << ": " << n.src << "->" << n.dst << " tag " << n.tag;
    if (!n.matched()) {
      label << (n.send_event != kNoEvent ? " (never received)"
                                         : " (no send record)");
    }
    out.nodes.push_back(
        ExportNode{"m" + std::to_string(i), label.str(), {}});
  }
  for (const auto& [from, to] : arcs_) {
    out.edges.push_back(ExportEdge{"m" + std::to_string(from),
                                   "m" + std::to_string(to), {}});
  }
  return out;
}

}  // namespace tdbg::graph
