#include "graph/comm_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

namespace tdbg::graph {

CommGraph CommGraph::from_trace(const trace::Trace& trace) {
  CommGraph g;
  const auto& report = trace.match_report();

  // Node per matched pair, then per unmatched half.
  std::unordered_map<std::size_t, std::size_t> node_of_event;
  for (const auto& m : report.matches) {
    const auto& send = trace.event(m.send_index);
    MessageNode node;
    node.send_event = m.send_index;
    node.recv_event = m.recv_index;
    node.src = send.rank;
    node.dst = send.peer;
    node.tag = send.tag;
    node_of_event[m.send_index] = g.nodes_.size();
    node_of_event[m.recv_index] = g.nodes_.size();
    g.nodes_.push_back(node);
  }
  for (std::size_t i : report.unmatched_sends) {
    const auto& send = trace.event(i);
    node_of_event[i] = g.nodes_.size();
    g.nodes_.push_back(MessageNode{i, kNoEvent, send.rank, send.peer, send.tag});
  }
  for (std::size_t i : report.unmatched_recvs) {
    const auto& recv = trace.event(i);
    node_of_event[i] = g.nodes_.size();
    g.nodes_.push_back(MessageNode{kNoEvent, i, recv.peer, recv.rank, recv.tag});
  }

  // Arcs: per rank, consecutive message endpoints in program order
  // connect their messages (the covering relation of message
  // causality along each process line).
  std::set<std::pair<std::size_t, std::size_t>> arc_set;
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    std::size_t prev_node = kNoEvent;
    trace.for_each_rank_event(r, [&](std::size_t i, const trace::Event& e) {
      if (!e.is_message()) return;
      const auto it = node_of_event.find(i);
      if (it == node_of_event.end()) return;
      if (prev_node != kNoEvent && prev_node != it->second) {
        arc_set.emplace(prev_node, it->second);
      }
      prev_node = it->second;
    });
  }
  g.arcs_.assign(arc_set.begin(), arc_set.end());
  return g;
}

std::vector<std::size_t> CommGraph::unmatched_sends() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].send_event != kNoEvent && nodes_[i].recv_event == kNoEvent) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::size_t> CommGraph::unmatched_recvs() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].send_event == kNoEvent && nodes_[i].recv_event != kNoEvent) {
      out.push_back(i);
    }
  }
  return out;
}

ExportGraph CommGraph::to_export() const {
  ExportGraph out;
  out.title = "communication graph";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    std::ostringstream label;
    label << "m" << i << ": " << n.src << "->" << n.dst << " tag " << n.tag;
    if (!n.matched()) {
      label << (n.send_event != kNoEvent ? " (never received)"
                                         : " (no send record)");
    }
    out.nodes.push_back(
        ExportNode{"m" + std::to_string(i), label.str(), {}});
  }
  for (const auto& [from, to] : arcs_) {
    out.edges.push_back(ExportEdge{"m" + std::to_string(from),
                                   "m" + std::to_string(to), {}});
  }
  return out;
}

}  // namespace tdbg::graph
