#include "graph/comm_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "support/executor.hpp"
#include "trace/store.hpp"

namespace tdbg::graph {

CommGraph CommGraph::from_trace(const trace::Trace& trace) {
  CommGraph g;
  const auto& report = trace.match_report();

  // Node per matched pair, then per unmatched half.  Matched node i
  // is simply match i, so the slots can be filled in parallel chunks
  // (the per-node event lookup dominates); the chunk size is fixed so
  // the layout never depends on thread count.
  const std::size_t nmatches = report.matches.size();
  g.nodes_.resize(nmatches);
  const std::size_t chunk = trace::kInMemorySegmentEvents;
  const std::size_t nchunks = (nmatches + chunk - 1) / chunk;
  exec::Executor::global().parallel_for(
      nchunks, "graph.comm.nodes", [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(lo + chunk, nmatches);
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& m = report.matches[k];
          const auto send = trace.event(m.send_index);
          MessageNode node;
          node.send_event = m.send_index;
          node.recv_event = m.recv_index;
          node.src = send.rank;
          node.dst = send.peer;
          node.tag = send.tag;
          g.nodes_[k] = node;
        }
      });
  std::unordered_map<std::size_t, std::size_t> node_of_event;
  node_of_event.reserve(2 * nmatches + report.unmatched_sends.size() +
                        report.unmatched_recvs.size());
  for (std::size_t k = 0; k < nmatches; ++k) {
    node_of_event[report.matches[k].send_index] = k;
    node_of_event[report.matches[k].recv_index] = k;
  }
  for (std::size_t i : report.unmatched_sends) {
    const auto& send = trace.event(i);
    node_of_event[i] = g.nodes_.size();
    g.nodes_.push_back(MessageNode{i, kNoEvent, send.rank, send.peer, send.tag});
  }
  for (std::size_t i : report.unmatched_recvs) {
    const auto& recv = trace.event(i);
    node_of_event[i] = g.nodes_.size();
    g.nodes_.push_back(MessageNode{kNoEvent, i, recv.peer, recv.rank, recv.tag});
  }

  // Arcs: per rank, consecutive message endpoints in program order
  // connect their messages (the covering relation of message
  // causality along each process line).  Rank sweeps are independent;
  // each writes its own arc vector and the set union below is
  // order-insensitive, so the final sorted arc list is deterministic.
  const auto nranks = static_cast<std::size_t>(trace.num_ranks());
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> rank_arcs(
      nranks);
  exec::Executor::global().parallel_for(
      nranks, "graph.comm.arcs", [&](std::size_t ri) {
        std::size_t prev_node = kNoEvent;
        trace.for_each_rank_event(
            static_cast<mpi::Rank>(ri),
            [&](std::size_t i, const trace::Event& e) {
              if (!e.is_message()) return;
              const auto it = node_of_event.find(i);
              if (it == node_of_event.end()) return;
              if (prev_node != kNoEvent && prev_node != it->second) {
                rank_arcs[ri].emplace_back(prev_node, it->second);
              }
              prev_node = it->second;
            });
      });
  std::set<std::pair<std::size_t, std::size_t>> arc_set;
  for (const auto& arcs : rank_arcs) {
    arc_set.insert(arcs.begin(), arcs.end());
  }
  g.arcs_.assign(arc_set.begin(), arc_set.end());
  return g;
}

std::vector<std::size_t> CommGraph::unmatched_sends() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].send_event != kNoEvent && nodes_[i].recv_event == kNoEvent) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::size_t> CommGraph::unmatched_recvs() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].send_event == kNoEvent && nodes_[i].recv_event != kNoEvent) {
      out.push_back(i);
    }
  }
  return out;
}

ExportGraph CommGraph::to_export() const {
  ExportGraph out;
  out.title = "communication graph";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    std::ostringstream label;
    label << "m" << i << ": " << n.src << "->" << n.dst << " tag " << n.tag;
    if (!n.matched()) {
      label << (n.send_event != kNoEvent ? " (never received)"
                                         : " (no send record)");
    }
    out.nodes.push_back(
        ExportNode{"m" + std::to_string(i), label.str(), {}});
  }
  for (const auto& [from, to] : arcs_) {
    out.edges.push_back(ExportEdge{"m" + std::to_string(from),
                                   "m" + std::to_string(to), {}});
  }
  return out;
}

}  // namespace tdbg::graph
