#include "graph/call_graph.hpp"

#include <set>

namespace tdbg::graph {

CallGraph CallGraph::project(const TraceGraph& graph,
                             std::optional<mpi::Rank> rank) {
  std::map<std::pair<trace::ConstructId, trace::ConstructId>, std::uint64_t>
      counts;
  for (const auto& [key, group] : graph.arc_groups()) {
    const auto& [from, to, kind] = key;
    if (kind != ArcKind::kCall) continue;
    if (rank && from.rank != *rank) continue;
    for (const auto& arc : group) {
      counts[{from.construct, to.construct}] += arc.count;
    }
  }
  CallGraph cg;
  cg.edges_.reserve(counts.size());
  for (const auto& [pair, calls] : counts) {
    cg.edges_.push_back(CallEdge{pair.first, pair.second, calls});
  }
  return cg;
}

CallGraph CallGraph::from_trace(const trace::Trace& trace,
                                std::optional<mpi::Rank> rank) {
  return project(TraceGraph::from_trace(trace), rank);
}

std::uint64_t CallGraph::call_count(trace::ConstructId callee) const {
  std::uint64_t n = 0;
  for (const auto& e : edges_) {
    if (e.callee == callee) n += e.calls;
  }
  return n;
}

std::size_t CallGraph::function_count() const {
  std::set<trace::ConstructId> fns;
  for (const auto& e : edges_) {
    if (e.caller != trace::kNoConstruct) fns.insert(e.caller);
    fns.insert(e.callee);
  }
  return fns.size();
}

ExportGraph CallGraph::to_export(const trace::ConstructRegistry& constructs,
                                 std::uint64_t calls_per_arc) const {
  ExportGraph out;
  out.title = "dynamic call graph";
  const auto name = [&](trace::ConstructId id) {
    return id == trace::kNoConstruct ? std::string("<root>")
                                     : constructs.info(id).name;
  };
  std::set<std::string> seen;
  const auto add_node = [&](trace::ConstructId id) {
    const auto label = name(id);
    if (seen.insert(label).second) {
      out.nodes.push_back(ExportNode{label, label, {}});
    }
  };
  for (const auto& e : edges_) {
    add_node(e.caller);
    add_node(e.callee);
    if (calls_per_arc == 0) {
      out.edges.push_back(ExportEdge{name(e.caller), name(e.callee),
                                     "x" + std::to_string(e.calls)});
      continue;
    }
    // Fig. 9's "number of calls per arc" display: split the count into
    // parallel arcs of at most `calls_per_arc` calls each.
    std::uint64_t remaining = e.calls;
    while (remaining > 0) {
      const auto chunk = std::min(remaining, calls_per_arc);
      out.edges.push_back(ExportEdge{name(e.caller), name(e.callee),
                                     "x" + std::to_string(chunk)});
      remaining -= chunk;
    }
  }
  return out;
}

}  // namespace tdbg::graph
