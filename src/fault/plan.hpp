#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mpi/types.hpp"

/// \file plan.hpp
/// Declarative description of the faults to inject into a run.  A
/// `FaultPlan` is a seed plus a list of rules; the `FaultEngine`
/// compiles it into per-rank decision streams (see engine.hpp).  This
/// is the ground-truth side of the analysis detectors: a plan *states*
/// which bad thing will happen, the detectors must then find it —
/// mirroring how MAD perturbs event ordering to expose nondeterminism
/// and how reference-run comparison localizes faulty processes.

namespace tdbg::fault {

/// Rule scope wildcard for `FaultRule::rank`.
inline constexpr mpi::Rank kAnyRank = -1;

/// What a rule injects.
enum class FaultKind : std::uint8_t {
  kDelay,       ///< sender sleeps `param` ns before delivering; with
                ///< `param == 0` the message is *held* forever (lost),
                ///< which manufactures unmatched sends and deadlocks
  kReorder,     ///< hold one message and deliver the sender's next
                ///< message to the same destination first (bounded
                ///< reordering: at most one message held per channel)
  kCorrupt,     ///< flip one payload byte (position drawn from the
                ///< rank's RNG stream; `param` records the offset)
  kCrash,       ///< the rank throws `InjectedCrash` as it enters its
                ///< `param`-th profiled call (1-based)
  kSlowRank,    ///< the rank sleeps `param` ns at every profiled call
  kWidenMatch,  ///< a tagged specific-source receive is posted as
                ///< ANY_SOURCE, manufacturing a real message race
};

/// Human-readable kind name ("delay", "crash", ...).
std::string_view fault_kind_name(FaultKind kind);

/// One injection rule.  A rule applies at an *injection opportunity*
/// (a send delivery, a receive posting, or a profiled call entry,
/// depending on the kind) when the scoping fields match; it then fires
/// with probability `rate`, decided by the acting rank's own RNG
/// stream so the decision sequence is deterministic per seed.
struct FaultRule {
  FaultKind kind = FaultKind::kDelay;
  double rate = 1.0;            ///< firing probability at eligible sites
  mpi::Rank rank = kAnyRank;    ///< restrict to one acting rank
  mpi::Tag tag = mpi::kAnyTag;  ///< restrict to one message tag
  std::uint64_t param = 0;      ///< kind-specific (see FaultKind)
  std::uint64_t window_lo = 0;  ///< first eligible opportunity index
  std::uint64_t window_hi = ~std::uint64_t{0};  ///< last eligible index

  [[nodiscard]] std::string describe() const;
};

/// A seeded set of rules.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }
  [[nodiscard]] std::string describe() const;

  /// The built-in plan catalogue (`tdbg_cli --fault-plan <name>`):
  ///   none          empty plan (engine present, nothing fires)
  ///   delay_storm   25% of sends delayed 20us
  ///   deadlock_ring rank 0 holds every send — a ring target deadlocks
  ///   crash         rank 1 throws at its 4th profiled call
  ///   corrupt       50% of payloads get one byte flipped
  ///   reorder       40% of sends swapped with the sender's next send
  ///   widen_races   every tagged receive widened to ANY_SOURCE
  ///   slow_rank     rank 0 sleeps 50us at every call
  /// Throws `UsageError` for an unknown name.
  static FaultPlan named(std::string_view name, std::uint64_t seed = 0);

  /// Names `named` accepts, for --help text and error messages.
  static std::vector<std::string_view> names();
};

}  // namespace tdbg::fault
