#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "mpi/fault_injector.hpp"
#include "mpi/hooks.hpp"
#include "mpi/message.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"

/// \file engine.hpp
/// The fault engine compiles a `FaultPlan` into live injections.  Two
/// attachment points cover every fault kind:
///
///   - `mpi::FaultInjector` (install via `RunOptions::fault_injector`)
///     intercepts user-tag deliveries on the sender's thread (delay,
///     hold, reorder, corrupt) and receive postings on the receiver's
///     thread (match widening);
///   - `hooks()` (a `ProfilingHooks` child — install FIRST on the
///     `HookFanout`, so a crash unwinds before the call is observed)
///     drives call-entry faults (crash, slow rank) and flushes
///     reorder-held messages at rank finish.
///
/// Determinism: every decision is drawn from the acting rank's own
/// SplitMix64 stream (`plan.seed` split by rank), consumed in that
/// rank's program order.  No wall-clock input, no shared state on the
/// decision path — same seed, same program ⇒ same injection sequence,
/// on record and on replay.
///
/// Every injection is (a) appended to the acting rank's record list
/// (the authoritative sequence the determinism and replay-fidelity
/// tests compare), (b) emitted as an `EventKind::kFaultInjected` trace
/// record through the thread-local instrumentation session when one is
/// live, and (c) counted in the `fault.*` obs metrics.

namespace tdbg::fault {

/// Thrown by a crash rule inside the rank body; the runtime reports it
/// as a `RankFailure` and aborts the run, exactly like an application
/// exception.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what) : std::runtime_error(what) {}
};

/// One injection that actually happened.
struct FaultRecord {
  FaultKind kind = FaultKind::kDelay;
  mpi::Rank rank = 0;   ///< acting rank (sender / receiver / crasher)
  mpi::Rank peer = -1;  ///< other endpoint, -1 for call-site faults
  mpi::Tag tag = mpi::kAnyTag;
  std::uint64_t op = 0;     ///< acting rank's opportunity index
  std::uint64_t param = 0;  ///< delay ns / call number / byte offset

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

/// Packs (kind, param) into the `bytes` field of a kFaultInjected
/// trace event: kind in the top byte, param in the low 56 bits.
[[nodiscard]] constexpr std::uint64_t pack_fault_bytes(FaultKind kind,
                                                       std::uint64_t param) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (param & ((std::uint64_t{1} << 56) - 1));
}
[[nodiscard]] constexpr FaultKind unpack_fault_kind(std::uint64_t bytes) {
  return static_cast<FaultKind>(bytes >> 56);
}
[[nodiscard]] constexpr std::uint64_t unpack_fault_param(std::uint64_t bytes) {
  return bytes & ((std::uint64_t{1} << 56) - 1);
}

class FaultEngine final : public mpi::FaultInjector {
 public:
  FaultEngine(FaultPlan plan, int num_ranks);
  ~FaultEngine() override;

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  /// The hook child for the run's `HookFanout`.  Install it FIRST: its
  /// begin-side must run before the session/recorder so an injected
  /// crash unwinds before the crashed call is observed anywhere.
  [[nodiscard]] mpi::ProfilingHooks* hooks() { return &hooks_; }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] int num_ranks() const { return num_ranks_; }

  // --- mpi::FaultInjector ---------------------------------------------------
  void deliver(mpi::Mailbox& mailbox, mpi::Message&& msg) override;
  mpi::Rank post_receive(mpi::Rank receiver, mpi::Rank source, mpi::Tag tag,
                         std::uint64_t recv_index) override;

  /// Total injections so far (any thread).
  [[nodiscard]] std::uint64_t injection_count() const {
    return injections_.load(std::memory_order_relaxed);
  }

  /// Injections of one kind so far (any thread).
  [[nodiscard]] std::uint64_t injection_count(FaultKind kind) const {
    return by_kind_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

  /// Every injection, grouped by acting rank (rank 0's records first,
  /// each rank's in its program order — the deterministic sequence the
  /// tests compare).  Safe while the run is live.
  [[nodiscard]] std::vector<FaultRecord> records() const;

  /// Active rules + injections so far (debugger `faults` command).
  [[nodiscard]] std::string describe() const;

 private:
  /// The ProfilingHooks face (separate object so the engine can also
  /// be a FaultInjector without a diamond).
  class Hooks : public mpi::ProfilingHooks {
   public:
    explicit Hooks(FaultEngine* engine) : engine_(engine) {}
    void on_call_begin(const mpi::CallInfo& info) override {
      engine_->call_begin(info);
    }
    void on_rank_finish(mpi::Rank rank) override {
      engine_->flush_rank(rank);
    }

   private:
    FaultEngine* engine_;
  };

  /// A reorder-held message waiting for the sender's next delivery to
  /// the same destination (or for rank finish).
  struct Held {
    mpi::Mailbox* mailbox = nullptr;
    mpi::Message msg;
  };

  /// Per-rank decision state.  Touched only by the owning rank's
  /// thread except `records`, which `records()`/`describe()` read
  /// under the mutex.
  struct alignas(64) RankState {
    support::SplitMix64 rng{0};
    std::uint64_t send_ops = 0;
    std::uint64_t calls = 0;
    std::vector<Held> held;  ///< at most one per destination
    mutable std::mutex records_mu;
    std::vector<FaultRecord> records;
  };

  void call_begin(const mpi::CallInfo& info);
  void flush_rank(mpi::Rank rank);

  /// Scope + rate check for one rule at one opportunity; consumes one
  /// RNG draw only when the rule is otherwise eligible and rate < 1.
  bool rule_fires(const FaultRule& rule, RankState& st, mpi::Rank acting,
                  mpi::Tag tag, std::uint64_t op) const;

  /// Records the injection (rank list + trace event + metrics).
  void note(RankState& st, const FaultRecord& rec, support::TimeNs t_start,
            support::TimeNs t_end);

  RankState& state(mpi::Rank rank) {
    return *ranks_[static_cast<std::size_t>(rank)];
  }

  FaultPlan plan_;
  int num_ranks_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  Hooks hooks_;

  std::atomic<std::uint64_t> injections_{0};
  std::array<std::atomic<std::uint64_t>, 6> by_kind_{};
};

}  // namespace tdbg::fault
