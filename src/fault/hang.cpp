#include "fault/hang.hpp"

#include <sstream>

#include "telemetry/log.hpp"
#include "trace/trace_io.hpp"

namespace tdbg::fault {

namespace {

std::string_view wait_kind_name(mpi::WaitKind kind) {
  switch (kind) {
    case mpi::WaitKind::kNone: return "running";
    case mpi::WaitKind::kRecv: return "blocked in recv";
    case mpi::WaitKind::kSsend: return "blocked in ssend";
    case mpi::WaitKind::kFinished: return "finished";
  }
  return "?";
}

}  // namespace

HangDiagnosis diagnose_hang(const mpi::RunResult& result,
                            const trace::Trace& trace,
                            const std::filesystem::path& flush_to) {
  HangDiagnosis diag;
  diag.hung = !result.completed;
  diag.deadlocked = result.deadlocked;
  diag.failures = result.failures;
  diag.abort_detail = result.abort_detail;

  const int num_ranks = trace.num_ranks();
  diag.ranks.resize(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    auto& rs = diag.ranks[static_cast<std::size_t>(r)];
    rs.rank = r;
    rs.wait = mpi::WaitInfo{r, mpi::WaitKind::kNone, mpi::kAnySource,
                            mpi::kAnyTag};
    trace.for_each_rank_event(r, [&](std::size_t, const trace::Event& e) {
      rs.last_event = e;  // per-rank stream order: last visit wins
      rs.has_last_event = true;
    });
  }
  for (const auto& w : result.final_waits) {
    if (w.rank < 0 || w.rank >= num_ranks) continue;
    diag.ranks[static_cast<std::size_t>(w.rank)].wait = w;
    if (w.kind == mpi::WaitKind::kRecv || w.kind == mpi::WaitKind::kSsend) {
      diag.blocked.push_back(w);
    }
  }

  if (!flush_to.empty()) {
    trace::write_trace(flush_to, trace);
    diag.partial_trace = flush_to;
  }

  // A hung run auto-dumps the flight recorder: the last records name
  // the injected hold ("fault.hold"), any stalled-rank warnings, and
  // the watchdog's deadlock verdict — the chain of evidence in one
  // place.
  if (diag.hung) {
    diag.flight_log =
        telemetry::FlightRecorder::global().dump_text(/*max_records=*/64);
  }
  return diag;
}

std::string HangDiagnosis::describe() const {
  std::ostringstream os;
  if (!hung) {
    os << "run completed normally\n";
    return os.str();
  }
  os << "run did not complete: "
     << (deadlocked ? "deadlocked" : "aborted") << "\n";
  if (!abort_detail.empty()) os << "  " << abort_detail << "\n";
  for (const auto& f : failures) {
    os << "  rank " << f.rank << " failed: " << f.what << "\n";
  }
  for (const auto& rs : ranks) {
    os << "  rank " << rs.rank << ": " << wait_kind_name(rs.wait.kind);
    if (rs.wait.kind == mpi::WaitKind::kRecv ||
        rs.wait.kind == mpi::WaitKind::kSsend) {
      os << " <- ";
      if (rs.wait.peer == mpi::kAnySource) {
        os << "any source";
      } else {
        os << "rank " << rs.wait.peer;
      }
      if (rs.wait.tag != mpi::kAnyTag) os << " tag " << rs.wait.tag;
    }
    if (rs.has_last_event) {
      os << "; last event: " << trace::event_kind_name(rs.last_event.kind)
         << " marker " << rs.last_event.marker;
      if (rs.last_event.is_message()) {
        os << " peer " << rs.last_event.peer << " tag " << rs.last_event.tag;
      }
    }
    os << "\n";
  }
  if (!partial_trace.empty()) {
    os << "  partial trace flushed to " << partial_trace.string() << "\n";
  }
  if (!flight_log.empty()) {
    os << "  flight recorder (most recent last):\n";
    std::istringstream lines(flight_log);
    for (std::string line; std::getline(lines, line);) {
      os << "    " << line << "\n";
    }
  }
  return os.str();
}

}  // namespace tdbg::fault
