#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "mpi/runtime.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

/// \file hang.hpp
/// Graceful degradation for killed runs: when a fault (an injected
/// crash, a held message) stops a run from completing, the watchdog
/// has already converted the hang into an aborted `RunResult`; this
/// turns that result plus the partial trace into a structured
/// diagnosis — which rank died or blocked where, what each rank last
/// did, and (optionally) the partial trace flushed to disk for
/// post-mortem analysis — instead of leaving the user with a silent
/// half-empty history.

namespace tdbg::fault {

/// Per-rank slice of a hang diagnosis.
struct RankLastState {
  mpi::Rank rank = 0;
  /// The rank's wait at abort time (kFinished if its body returned).
  mpi::WaitInfo wait;
  bool has_last_event = false;
  trace::Event last_event;  ///< valid when has_last_event
};

struct HangDiagnosis {
  bool hung = false;  ///< run did not complete (deadlock or failure)
  bool deadlocked = false;
  std::vector<mpi::RankFailure> failures;
  std::string abort_detail;

  /// Ranks blocked at abort time — the "blocked-on" edges (a recv wait
  /// is an edge rank → peer; kAnySource fans out to every sender).
  std::vector<mpi::WaitInfo> blocked;

  /// One entry per rank: wait state + last trace event.
  std::vector<RankLastState> ranks;

  /// Where the partial trace was flushed; empty if not requested.
  std::filesystem::path partial_trace;

  /// Tail of the flight recorder at diagnosis time — the black box's
  /// last words (injected holds, stall warnings, the watchdog verdict).
  std::string flight_log;

  [[nodiscard]] std::string describe() const;
};

/// Builds a diagnosis from a finished (possibly aborted) run and its
/// partial trace.  When `flush_to` is non-empty the trace is written
/// there (indexed v2), so the on-disk history survives the debugger.
HangDiagnosis diagnose_hang(const mpi::RunResult& result,
                            const trace::Trace& trace,
                            const std::filesystem::path& flush_to = {});

}  // namespace tdbg::fault
