#include "fault/engine.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "instrument/session.hpp"
#include "mpi/mailbox.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "telemetry/log.hpp"
#include "telemetry/span.hpp"
#include "trace/event.hpp"

namespace tdbg::fault {

namespace {

struct FaultMetrics {
  obs::Counter& injections;
  std::array<obs::Counter*, 6> by_kind;
  obs::Histogram& delay_ns;
};

FaultMetrics& fault_metrics() {
  static FaultMetrics m = [] {
    auto& reg = obs::MetricsRegistry::global();
    return FaultMetrics{
        reg.counter("fault.injections"),
        {&reg.counter("fault.injections.delay"),
         &reg.counter("fault.injections.reorder"),
         &reg.counter("fault.injections.corrupt"),
         &reg.counter("fault.injections.crash"),
         &reg.counter("fault.injections.slow_rank"),
         &reg.counter("fault.injections.widen")},
        reg.histogram("fault.delay_ns", obs::Unit::kNanoseconds)};
  }();
  return m;
}

void sleep_ns(std::uint64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

/// Flight-recorder site for an injection.  A hold (kDelay, param 0)
/// gets its own site — it is the injection the hang diagnosis must
/// name, so "fault.hold" appearing in a dumped flight log is the
/// black box explaining the deadlock.
std::uint32_t fault_site(const FaultRecord& rec) {
  static const std::uint32_t hold = telemetry::intern_site("fault.hold");
  static const std::uint32_t delay = telemetry::intern_site("fault.delay");
  static const std::uint32_t reorder = telemetry::intern_site("fault.reorder");
  static const std::uint32_t corrupt = telemetry::intern_site("fault.corrupt");
  static const std::uint32_t crash = telemetry::intern_site("fault.crash");
  static const std::uint32_t slow = telemetry::intern_site("fault.slow_rank");
  static const std::uint32_t widen = telemetry::intern_site("fault.widen");
  switch (rec.kind) {
    case FaultKind::kDelay: return rec.param == 0 ? hold : delay;
    case FaultKind::kReorder: return reorder;
    case FaultKind::kCorrupt: return corrupt;
    case FaultKind::kCrash: return crash;
    case FaultKind::kSlowRank: return slow;
    case FaultKind::kWidenMatch: return widen;
  }
  return delay;
}

std::uint32_t inject_span_site() {
  static const std::uint32_t id = telemetry::intern_site("fault.inject");
  return id;
}

}  // namespace

FaultEngine::FaultEngine(FaultPlan plan, int num_ranks)
    : plan_(std::move(plan)), num_ranks_(num_ranks), hooks_(this) {
  TDBG_CHECK(num_ranks > 0, "fault engine needs at least one rank");
  const support::SplitMix64 root(plan_.seed);
  ranks_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    auto st = std::make_unique<RankState>();
    st->rng = root.split(static_cast<std::uint64_t>(r));
    ranks_.push_back(std::move(st));
  }
}

FaultEngine::~FaultEngine() = default;

bool FaultEngine::rule_fires(const FaultRule& rule, RankState& st,
                             mpi::Rank acting, mpi::Tag tag,
                             std::uint64_t op) const {
  if (rule.rank != kAnyRank && rule.rank != acting) return false;
  if (rule.tag != mpi::kAnyTag && rule.tag != tag) return false;
  if (op < rule.window_lo || op > rule.window_hi) return false;
  if (rule.rate >= 1.0) return true;
  return st.rng.next_double() < rule.rate;
}

void FaultEngine::note(RankState& st, const FaultRecord& rec,
                       support::TimeNs t_start, support::TimeNs t_end) {
  injections_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[static_cast<std::size_t>(rec.kind)].fetch_add(
      1, std::memory_order_relaxed);
  {
    std::lock_guard lk(st.records_mu);
    st.records.push_back(rec);
  }
  if constexpr (obs::kMetricsEnabled) {
    auto& m = fault_metrics();
    m.injections.add(rec.rank);
    m.by_kind[static_cast<std::size_t>(rec.kind)]->add(rec.rank);
    if (rec.kind == FaultKind::kDelay || rec.kind == FaultKind::kSlowRank) {
      m.delay_ns.record(rec.rank, rec.param);
    }
  }
  // Flight-recorder line and a "fault.inject" self-span per injection:
  // the black box records *what* struck (per-kind site, op and param as
  // args), the Chrome trace shows *when* on the tdbg track.
  {
    auto& flight = telemetry::FlightRecorder::global();
    if (flight.enabled(telemetry::LogLevel::kWarn)) {
      flight.log_rank(rec.rank, telemetry::LogLevel::kWarn, fault_site(rec),
                      rec.op, rec.param);
    }
    auto& spans = telemetry::SpanCollector::global();
    if (spans.enabled()) {
      spans.add(inject_span_site(), rec.rank, t_start, t_end);
    }
  }
  // First-class trace record, so the faulted history explains itself
  // and replay can cross-check its own injections against the
  // recording's.  The session binding is thread-local to the acting
  // rank; outside an instrumented run nothing is emitted.
  if (auto* session = instr::Session::current(); session != nullptr) {
    trace::Event e;
    e.kind = trace::EventKind::kFaultInjected;
    e.rank = rec.rank;
    e.marker = session->counter(rec.rank);
    e.construct = trace::kNoConstruct;
    e.t_start = t_start;
    e.t_end = t_end;
    e.peer = rec.peer;
    e.tag = rec.tag;
    e.channel_seq = rec.op;
    e.bytes = pack_fault_bytes(rec.kind, rec.param);
    session->record_event(e);
  }
}

void FaultEngine::deliver(mpi::Mailbox& mailbox, mpi::Message&& msg) {
  RankState& st = state(msg.source);
  const std::uint64_t op = st.send_ops++;
  const mpi::Rank sender = msg.source;
  const mpi::Rank dest = msg.dest;

  bool hold = false;
  bool reorder = false;
  std::uint64_t delay = 0;
  bool corrupt = false;
  for (const FaultRule& rule : plan_.rules) {
    switch (rule.kind) {
      case FaultKind::kDelay:
        if (!hold && delay == 0 && rule_fires(rule, st, sender, msg.tag, op)) {
          // A held rendezvous message would block its sender forever
          // *inside the ssend* — that is sender breakage, not message
          // loss — so holds apply to eager sends only.
          if (rule.param == 0 && !msg.synchronous) {
            hold = true;
          } else if (rule.param != 0) {
            delay = rule.param;
          }
        }
        break;
      case FaultKind::kReorder:
        if (!reorder && !msg.synchronous &&
            rule_fires(rule, st, sender, msg.tag, op)) {
          reorder = true;
        }
        break;
      case FaultKind::kCorrupt:
        if (!corrupt && msg.payload_size() > 0 &&
            rule_fires(rule, st, sender, msg.tag, op)) {
          corrupt = true;
        }
        break;
      case FaultKind::kCrash:
      case FaultKind::kSlowRank:
      case FaultKind::kWidenMatch:
        break;  // call-site / receive-site kinds; not a delivery fault
    }
  }

  if (corrupt) {
    const auto payload = msg.payload();
    std::vector<std::byte> flipped(payload.begin(), payload.end());
    const std::uint64_t at = st.rng.next_below(flipped.size());
    flipped[at] ^= std::byte{0xFF};
    msg.set_payload(flipped);
    const auto t = support::run_time_ns();
    note(st, FaultRecord{FaultKind::kCorrupt, sender, dest, msg.tag, op, at},
         t, t);
  }

  if (hold) {
    // The message is never delivered: its send completes (it already
    // did, eagerly), but no receive can ever match it — exactly the
    // "lost message" the supervision detector reports as an unmatched
    // send, and the raw material of the deadlock_ring plan.
    const auto t = support::run_time_ns();
    note(st, FaultRecord{FaultKind::kDelay, sender, dest, msg.tag, op, 0}, t,
         t);
    return;
  }

  if (delay != 0) {
    const auto t0 = support::run_time_ns();
    sleep_ns(delay);
    note(st, FaultRecord{FaultKind::kDelay, sender, dest, msg.tag, op, delay},
         t0, t0 + static_cast<support::TimeNs>(delay));
  }

  if (reorder) {
    bool already_held = false;
    for (const Held& h : st.held) {
      if (h.msg.dest == dest) {
        already_held = true;  // bounded: one held message per channel
        break;
      }
    }
    if (!already_held) {
      const auto t = support::run_time_ns();
      note(st, FaultRecord{FaultKind::kReorder, sender, dest, msg.tag, op, 0},
           t, t);
      st.held.push_back(Held{&mailbox, std::move(msg)});
      return;
    }
  }

  mailbox.deliver(std::move(msg));

  // Completing a swap: the message held from an earlier reorder
  // injection follows the one that just overtook it.  Same sender
  // thread, so the channel's SPSC discipline is preserved — only the
  // *order* (and therefore the seq numbering) is perturbed.
  for (auto it = st.held.begin(); it != st.held.end(); ++it) {
    if (it->msg.dest == dest) {
      mpi::Mailbox* box = it->mailbox;
      mpi::Message held = std::move(it->msg);
      st.held.erase(it);
      box->deliver(std::move(held));
      break;
    }
  }
}

mpi::Rank FaultEngine::post_receive(mpi::Rank receiver, mpi::Rank source,
                                    mpi::Tag tag, std::uint64_t recv_index) {
  if (source == mpi::kAnySource) return source;  // nothing to widen
  RankState& st = state(receiver);
  for (const FaultRule& rule : plan_.rules) {
    if (rule.kind != FaultKind::kWidenMatch) continue;
    if (!rule_fires(rule, st, receiver, tag, recv_index)) continue;
    const auto t = support::run_time_ns();
    note(st,
         FaultRecord{FaultKind::kWidenMatch, receiver, source, tag, recv_index,
                     0},
         t, t);
    return mpi::kAnySource;
  }
  return source;
}

void FaultEngine::call_begin(const mpi::CallInfo& info) {
  RankState& st = state(info.rank);
  const std::uint64_t call = ++st.calls;
  for (const FaultRule& rule : plan_.rules) {
    switch (rule.kind) {
      case FaultKind::kSlowRank:
        if (rule.param != 0 && rule_fires(rule, st, info.rank, info.tag, call)) {
          const auto t0 = support::run_time_ns();
          sleep_ns(rule.param);
          note(st,
               FaultRecord{FaultKind::kSlowRank, info.rank, -1, mpi::kAnyTag,
                           call, rule.param},
               t0, t0 + static_cast<support::TimeNs>(rule.param));
        }
        break;
      case FaultKind::kCrash:
        // Deterministic by construction (no rate draw): the rank dies
        // entering its param-th profiled call.  The record and trace
        // event land first, then the throw unwinds the body before any
        // later hook observes the call — ground truth for what the
        // supervision detector must reconstruct.
        if ((rule.rank == kAnyRank || rule.rank == info.rank) &&
            call == rule.param) {
          const auto t = support::run_time_ns();
          note(st,
               FaultRecord{FaultKind::kCrash, info.rank, -1, mpi::kAnyTag,
                           call, rule.param},
               t, t);
          throw InjectedCrash("injected crash: rank " +
                              std::to_string(info.rank) + " at call " +
                              std::to_string(call));
        }
        break;
      case FaultKind::kDelay:
      case FaultKind::kReorder:
      case FaultKind::kCorrupt:
      case FaultKind::kWidenMatch:
        break;  // delivery / receive-site kinds
    }
  }
}

void FaultEngine::flush_rank(mpi::Rank rank) {
  // Rank finish, on the rank's own thread: release any reorder-held
  // messages so a swap interrupted by program end does not turn into
  // an accidental hold.
  RankState& st = state(rank);
  for (Held& h : st.held) h.mailbox->deliver(std::move(h.msg));
  st.held.clear();
}

std::vector<FaultRecord> FaultEngine::records() const {
  std::vector<FaultRecord> out;
  for (const auto& st : ranks_) {
    std::lock_guard lk(st->records_mu);
    out.insert(out.end(), st->records.begin(), st->records.end());
  }
  return out;
}

std::string FaultEngine::describe() const {
  std::ostringstream os;
  os << "fault plan: " << plan_.describe() << "\n";
  os << "injections: " << injection_count();
  bool any = false;
  for (std::size_t k = 0; k < by_kind_.size(); ++k) {
    const auto n = by_kind_[k].load(std::memory_order_relaxed);
    if (n == 0) continue;
    os << (any ? ", " : " (");
    os << fault_kind_name(static_cast<FaultKind>(k)) << "=" << n;
    any = true;
  }
  if (any) os << ")";
  os << "\n";
  for (const auto& rec : records()) {
    os << "  " << fault_kind_name(rec.kind) << " rank=" << rec.rank;
    if (rec.peer >= 0) os << " peer=" << rec.peer;
    if (rec.tag != mpi::kAnyTag) os << " tag=" << rec.tag;
    os << " op=" << rec.op;
    if (rec.param != 0) os << " param=" << rec.param;
    os << "\n";
  }
  return os.str();
}

}  // namespace tdbg::fault
