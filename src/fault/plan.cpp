#include "fault/plan.hpp"

#include <sstream>

#include "support/error.hpp"

namespace tdbg::fault {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDelay: return "delay";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSlowRank: return "slow_rank";
    case FaultKind::kWidenMatch: return "widen";
  }
  return "?";
}

std::string FaultRule::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  if (kind == FaultKind::kDelay && param == 0) os << "(hold)";
  os << " rate=" << rate;
  if (rank != kAnyRank) os << " rank=" << rank;
  if (tag != mpi::kAnyTag) os << " tag=" << tag;
  if (param != 0) os << " param=" << param;
  if (window_lo != 0 || window_hi != ~std::uint64_t{0}) {
    os << " window=[" << window_lo << ",";
    if (window_hi == ~std::uint64_t{0}) {
      os << "inf)";
    } else {
      os << window_hi << "]";
    }
  }
  return os.str();
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " rules=" << rules.size();
  for (const auto& rule : rules) os << "\n  " << rule.describe();
  return os.str();
}

FaultPlan FaultPlan::named(std::string_view name, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (name == "none") {
    return plan;
  }
  if (name == "delay_storm") {
    FaultRule r;
    r.kind = FaultKind::kDelay;
    r.rate = 0.25;
    r.param = 20'000;  // 20us
    plan.rules.push_back(r);
    return plan;
  }
  if (name == "deadlock_ring") {
    // Rank 0 holds every send: in a ring each rank blocks receiving
    // from its predecessor, closing a genuine wait-for cycle the
    // watchdog + deadlock detector must name.
    FaultRule r;
    r.kind = FaultKind::kDelay;
    r.rate = 1.0;
    r.rank = 0;
    r.param = 0;  // hold forever
    plan.rules.push_back(r);
    return plan;
  }
  if (name == "crash") {
    FaultRule r;
    r.kind = FaultKind::kCrash;
    r.rank = 1;
    r.param = 4;  // throw entering the 4th profiled call
    plan.rules.push_back(r);
    return plan;
  }
  if (name == "corrupt") {
    FaultRule r;
    r.kind = FaultKind::kCorrupt;
    r.rate = 0.5;
    plan.rules.push_back(r);
    return plan;
  }
  if (name == "reorder") {
    FaultRule r;
    r.kind = FaultKind::kReorder;
    r.rate = 0.4;
    plan.rules.push_back(r);
    return plan;
  }
  if (name == "widen_races") {
    FaultRule r;
    r.kind = FaultKind::kWidenMatch;
    r.rate = 1.0;
    plan.rules.push_back(r);
    return plan;
  }
  if (name == "slow_rank") {
    FaultRule r;
    r.kind = FaultKind::kSlowRank;
    r.rank = 0;
    r.param = 50'000;  // 50us per call
    plan.rules.push_back(r);
    return plan;
  }
  std::string known;
  for (const auto n : names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw UsageError("unknown fault plan '" + std::string(name) +
                            "' (known: " + known + ")");
}

std::vector<std::string_view> FaultPlan::names() {
  return {"none",    "delay_storm", "deadlock_ring", "crash",
          "corrupt", "reorder",     "widen_races",   "slow_rank"};
}

}  // namespace tdbg::fault
