#include "support/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "telemetry/log.hpp"
#include "telemetry/span.hpp"

namespace tdbg::exec {

namespace {

/// Which worker of which pool the current thread is (for own-queue
/// pops and steal accounting).  -1 on non-pool threads.
thread_local const Executor* t_pool = nullptr;
thread_local int t_worker = -1;

std::mutex g_exec_mu;
std::size_t g_default_threads = 0;  // 0 = not set, resolve from env/hw
std::unique_ptr<Executor> g_default;
Executor* g_current = nullptr;

std::size_t clamp_threads(std::size_t n) {
  return std::clamp<std::size_t>(n, 1, kMaxThreads);
}

}  // namespace

/// Registry handles resolved once per pool.  Looking these up in the
/// constructor also forces the metrics/telemetry singletons to exist
/// before any pool, so static destruction can never tear them down
/// while a worker is still running.
class Executor::MetricsRefs {
 public:
  MetricsRefs() {
    auto& reg = obs::MetricsRegistry::global();
    tasks = &reg.counter("exec.tasks");
    steals = &reg.counter("exec.steals");
    queue_depth = &reg.gauge("exec.queue_depth");
    threads = &reg.gauge("exec.threads");
    (void)telemetry::SpanCollector::global();
  }

  obs::Counter* tasks = nullptr;
  obs::Counter* steals = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* threads = nullptr;
};

Executor::Executor(std::size_t threads)
    : threads_(clamp_threads(threads)),
      metrics_(std::make_unique<MetricsRefs>()) {
  metrics_->threads->set(-1, threads_);
  const std::size_t workers = threads_ - 1;
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Executor::~Executor() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard lk(wake_mu_);  // pair with the workers' wait
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Anything still queued (fire-and-forget prefetches) runs inline so
  // its completion side effects resolve before the pool vanishes.
  drain_inline();
}

Executor& Executor::global() {
  {
    std::lock_guard lk(g_exec_mu);
    if (g_current != nullptr) return *g_current;
  }
  // Resolve the size outside the lock: default_threads() takes
  // g_exec_mu itself.
  const std::size_t n = default_threads();
  std::lock_guard lk(g_exec_mu);
  if (g_current == nullptr) {
    if (!g_default) g_default = std::make_unique<Executor>(n);
    g_current = g_default.get();
  }
  return *g_current;
}

void Executor::set_default_threads(std::size_t n) {
  std::unique_ptr<Executor> retired;
  std::lock_guard lk(g_exec_mu);
  g_default_threads = clamp_threads(n);
  if (g_default && g_current == g_default.get()) g_current = nullptr;
  retired = std::move(g_default);  // destroyed after the lock scope
}

std::size_t Executor::default_threads() {
  {
    std::lock_guard lk(g_exec_mu);
    if (g_default_threads != 0) return g_default_threads;
  }
  if (const char* env = std::getenv("TDBG_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return clamp_threads(static_cast<std::size_t>(v));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, kDefaultThreadCap);
}

void Executor::worker_main(std::size_t id) {
  t_pool = this;
  t_worker = static_cast<int>(id);
  telemetry::set_thread_rank(kWorkerRankBase + static_cast<int>(id));
  for (;;) {
    if (auto task = try_pop()) {
      task();
      continue;
    }
    std::unique_lock lk(wake_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    wake_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void Executor::push_task(std::function<void()> fn) {
  const std::size_t q =
      rr_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard lk(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(fn));
  }
  const auto depth = queued_.fetch_add(1, std::memory_order_release) + 1;
  metrics_->queue_depth->record_max(-1, depth);
  {
    // Empty critical section: a worker that saw queued_ == 0 is either
    // already inside wait() (the notify wakes it) or still holds
    // wake_mu_ (we serialize behind it and it re-checks).
    std::lock_guard lk(wake_mu_);
  }
  wake_cv_.notify_one();
}

std::function<void()> Executor::try_pop() {
  const int self = (t_pool == this) ? t_worker : -1;
  if (self >= 0) {
    auto& q = *queues_[static_cast<std::size_t>(self)];
    std::lock_guard lk(q.mu);
    if (!q.tasks.empty()) {
      auto fn = std::move(q.tasks.front());
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return fn;
    }
  }
  const std::size_t nq = queues_.size();
  const std::size_t start = self >= 0 ? static_cast<std::size_t>(self) + 1 : 0;
  for (std::size_t k = 0; k < nq; ++k) {
    const std::size_t i = (start + k) % nq;
    if (self >= 0 && i == static_cast<std::size_t>(self)) continue;
    auto& q = *queues_[i];
    std::lock_guard lk(q.mu);
    if (q.tasks.empty()) continue;
    auto fn = std::move(q.tasks.back());
    q.tasks.pop_back();
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_->steals->add(-1);
    return fn;
  }
  return nullptr;
}

void Executor::drain_inline() {
  while (auto task = try_pop()) task();
}

void Executor::parallel_for(std::size_t n, std::string_view site,
                            const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_ <= 1 || n <= 1 || queues_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  metrics_->tasks->add(-1, n);
  obs::MetricsRegistry::global()
      .counter("exec.tasks." + std::string(site))
      .add(-1, n);
  const std::uint32_t site_id = telemetry::intern_site(site);

  struct ForState {
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForState>();
  state->total = n;

  for (std::size_t i = 0; i < n; ++i) {
    push_task([state, site_id, &body, i] {
      {
        telemetry::Span span(site_id);
        try {
          body(i);
        } catch (...) {
          std::lock_guard lk(state->mu);
          if (!state->error) state->error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->total) {
        std::lock_guard lk(state->mu);  // pair with the caller's wait
        state->cv.notify_all();
      }
    });
  }

  // Drain alongside the workers instead of blocking: the tasks we pop
  // may belong to this loop or to a nested/concurrent one — either
  // way it is progress, and it is what makes nested parallel_for
  // deadlock-free.
  while (state->done.load(std::memory_order_acquire) < state->total) {
    if (auto task = try_pop()) {
      task();
      continue;
    }
    std::unique_lock lk(state->mu);
    // Bounded wait as a backstop; correctness comes from the
    // last-task notify under state->mu above.
    state->cv.wait_for(lk, std::chrono::milliseconds(5), [&] {
      return state->done.load(std::memory_order_acquire) >= state->total;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void Executor::async(std::function<void()> task) {
  if (threads_ <= 1 || queues_.empty()) {
    task();
    return;
  }
  push_task(std::move(task));
}

ScopedExecutor::ScopedExecutor(std::size_t threads) : exec_(threads) {
  std::lock_guard lk(g_exec_mu);
  prev_ = g_current;
  g_current = &exec_;
}

ScopedExecutor::~ScopedExecutor() {
  std::lock_guard lk(g_exec_mu);
  g_current = prev_;
}

}  // namespace tdbg::exec
