#pragma once

#include <cstdint>

namespace tdbg::support {

/// Seeded, splittable PRNG (SplitMix64, Steele et al., OOPSLA 2014).
///
/// This is the determinism workhorse for the fault-injection layer and
/// the randomized stress tests: each rank derives its own stream with
/// `split(rank)` and consumes it in that rank's program order, so no
/// shared state is touched on the hot path and the sequence a rank
/// sees is a pure function of (seed, stream, draw index) — identical
/// across platforms, thread schedules, and record/replay runs.
///
/// The generator is the canonical SplitMix64: 64 bits of state, one
/// addition and three xor-shift-multiply rounds per draw.  Its output
/// for a given seed is fixed by the algorithm (unit tests pin golden
/// values), which is exactly what "same seed ⇒ same faults" needs.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound); 0 when bound == 0.  Modulo reduction
  /// — the bias is ~bound/2^64, irrelevant for fault rates and test
  /// shuffles, and keeping it branch-free keeps the sequence identical
  /// everywhere (a rejection loop's draw count would depend on bound).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1), from the top 53 bits of one draw.
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent child stream without advancing this
  /// generator: the child's seed mixes the current state with the
  /// stream id through the SplitMix64 finalizer, so `split(a)` and
  /// `split(b)` (a != b) produce statistically unrelated sequences and
  /// `split` is a pure function of (state, stream).
  [[nodiscard]] constexpr SplitMix64 split(std::uint64_t stream) const {
    std::uint64_t z = state_ + (stream + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return SplitMix64(z ^ (z >> 31));
  }

  [[nodiscard]] constexpr std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

}  // namespace tdbg::support
