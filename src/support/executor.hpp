#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

/// \file executor.hpp
/// `tdbg::exec` — the analysis thread pool.
///
/// A fixed work-stealing pool, started lazily on first use and sized
/// by (in priority order) `--threads` / `Executor::set_default_threads`,
/// the `TDBG_THREADS` environment variable, and finally
/// `hardware_concurrency` (capped).  At one thread every entry point
/// degrades to inline execution on the calling thread — byte-for-byte
/// the pre-pool serial behavior, which is what the determinism
/// contract in DESIGN.md ("Parallel analysis") is anchored to.
///
/// Scheduling: one deque per worker; submissions are distributed
/// round-robin; a worker pops its own queue from the front and steals
/// from the back of its siblings.  `parallel_for` callers participate
/// in the draining loop instead of blocking, so a task that itself
/// calls `parallel_for` (nested parallelism) can never deadlock the
/// pool — somebody always makes progress on the remaining tasks.
///
/// Observability: every pool task runs inside a telemetry `Span`
/// tagged with the call site, so the Chrome-trace export shows
/// analysis parallelism as real worker tracks (worker threads bind
/// thread rank `kWorkerRankBase + id`).  The pool also maintains the
/// obs counters `exec.tasks` (and `exec.tasks.<site>` per phase),
/// `exec.steals`, and the gauges `exec.queue_depth` (high-water
/// mark) / `exec.threads`.

namespace tdbg::exec {

/// Telemetry thread-rank base for pool workers: worker `i` logs and
/// profiles as rank `kWorkerRankBase + i`, far above any real MPI
/// rank, so its spans land on their own Chrome-trace rows.
inline constexpr int kWorkerRankBase = 64;

/// Hard ceiling on configurable pool sizes.
inline constexpr std::size_t kMaxThreads = 64;

/// Cap applied to `hardware_concurrency` when no explicit size is
/// given: analysis segments are coarse, so more threads than this buy
/// nothing and cost startup.
inline constexpr std::size_t kDefaultThreadCap = 8;

/// A fixed-size work-stealing thread pool.
///
/// `threads` counts the *total* parallelism: the pool starts
/// `threads - 1` workers and the submitting thread works too.  With
/// `threads <= 1` no workers start and everything runs inline.
class Executor {
 public:
  explicit Executor(std::size_t threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool, created on first use with
  /// `default_threads()`.  `ScopedExecutor` temporarily replaces it.
  static Executor& global();

  /// Sets the size the next lazily-created global pool uses (clamped
  /// to [1, kMaxThreads]).  If the default global pool already exists
  /// it is torn down and rebuilt on next use — tools call this while
  /// single-threaded, before any analysis runs.
  static void set_default_threads(std::size_t n);

  /// The size `global()` would use right now: the
  /// `set_default_threads` value, else `TDBG_THREADS`, else
  /// `hardware_concurrency` capped at `kDefaultThreadCap`.
  [[nodiscard]] static std::size_t default_threads();

  /// Total parallelism (workers + caller).
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs `body(0) .. body(n-1)` across the pool and returns when all
  /// have finished.  The caller drains tasks too.  The first exception
  /// thrown by any body is rethrown here (the remaining tasks still
  /// run).  `site` names the phase for telemetry spans and the
  /// `exec.tasks.<site>` counter.  Inline (no pool, no spans) when the
  /// pool is serial or `n <= 1` — the exact serial code path.
  void parallel_for(std::size_t n, std::string_view site,
                    const std::function<void(std::size_t)>& body);

  /// Fire-and-forget: runs `task` on a worker eventually (inline when
  /// the pool is serial).  Tasks still queued at destruction are run
  /// (not dropped) by the destructor, so completion side effects —
  /// e.g. the segment prefetch inflight count — always resolve.
  void async(std::function<void()> task);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(std::size_t id);
  void push_task(std::function<void()> fn);
  /// Pops one task: own queue front first (workers), then steals from
  /// sibling queue backs.  Null when everything is empty.
  std::function<void()> try_pop();
  void drain_inline();

  std::size_t threads_ = 1;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> queued_{0};  ///< pushed, not yet claimed
  std::atomic<std::size_t> rr_{0};      ///< round-robin submit cursor

  // Cached instrument handles (registry lookups take a mutex).
  class MetricsRefs;
  std::unique_ptr<MetricsRefs> metrics_;
};

/// RAII replacement of the global pool — tests and benches use this to
/// compare the same computation at 1/2/8 threads.
class ScopedExecutor {
 public:
  explicit ScopedExecutor(std::size_t threads);
  ~ScopedExecutor();

  ScopedExecutor(const ScopedExecutor&) = delete;
  ScopedExecutor& operator=(const ScopedExecutor&) = delete;

  [[nodiscard]] Executor& get() { return exec_; }

 private:
  Executor exec_;
  Executor* prev_;
};

}  // namespace tdbg::exec
