#include "support/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace tdbg::support {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string human_duration(std::int64_t ns) {
  char buf[64];
  const double abs_ns = std::abs(static_cast<double>(ns));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(ns) / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

std::string human_bytes(std::size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b < 1024) {
    std::snprintf(buf, sizeof buf, "%zu B", bytes);
  } else if (b < 1024.0 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
  } else if (b < 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GiB", b / (1024.0 * 1024 * 1024));
  }
  return buf;
}

std::string escape_label(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace tdbg::support
