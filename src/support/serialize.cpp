#include "support/serialize.hpp"

namespace tdbg::support {

void BinaryWriter::put_string(std::string_view s) {
  TDBG_CHECK(s.size() <= UINT32_MAX, "string too long to serialize");
  put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
  const auto old = buf_.size();
  buf_.resize(old + s.size());
  std::memcpy(buf_.data() + old, s.data(), s.size());
}

void BinaryWriter::put_raw(std::span<const std::byte> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::string BinaryReader::get_string() {
  const auto len = get<std::uint32_t>();
  require(len);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return s;
}

void BinaryReader::seek(std::size_t pos) {
  if (pos > bytes_.size()) {
    throw FormatError("BinaryReader::seek past end of buffer");
  }
  pos_ = pos;
}

void BinaryReader::require(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw FormatError("truncated binary record: need " + std::to_string(n) +
                      " bytes at offset " + std::to_string(pos_) +
                      ", have " + std::to_string(bytes_.size() - pos_));
  }
}

}  // namespace tdbg::support
