#pragma once

#include <chrono>
#include <cstdint>

/// \file clock.hpp
/// Monotonic time sources for trace timestamps and benchmarking.
///
/// Trace timestamps are nanoseconds since a per-run epoch.  They are
/// used only for *display* (time-space diagrams, vertical stopline
/// placement); every correctness-critical feature of the debugger uses
/// execution markers and causality instead (DESIGN.md, "Key design
/// decisions").

namespace tdbg::support {

/// Nanoseconds since an arbitrary (per-process) monotonic epoch.
using TimeNs = std::int64_t;

/// Returns the current monotonic time in nanoseconds.
TimeNs now_ns();

/// Resets the per-run epoch so subsequent `run_time_ns` values start
/// near zero.  Called by the runtime at the start of each spawned run;
/// makes traces from successive runs comparable.
void reset_run_epoch();

/// Nanoseconds since the last `reset_run_epoch` call (or process
/// start).
TimeNs run_time_ns();

/// The current run epoch in `now_ns` terms — lets consumers that
/// buffer absolute timestamps (the telemetry flight recorder, spans
/// that straddle a run start) convert them to run-relative display
/// time at read-out.
TimeNs run_epoch_ns();

/// Simple wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = now_ns(); }

  /// Elapsed time since construction / last reset.
  [[nodiscard]] TimeNs elapsed_ns() const { return now_ns() - start_; }

  /// Elapsed time in seconds as a double (for report tables).
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  TimeNs start_;
};

}  // namespace tdbg::support
