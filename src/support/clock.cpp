#include "support/clock.hpp"

#include <atomic>
#include <chrono>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace tdbg::support {

namespace {

TimeNs steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if defined(__x86_64__)

/// Calibrated TSC clock: `now_ns` is on every instrumentation hot path
/// (two reads per traced construct), and a raw RDTSC plus a fixed-point
/// scale is several times cheaper than the vDSO clock_gettime path —
/// especially under virtualization.  Calibrated once at static
/// initialization against steady_clock over a ~2 ms window (error
/// well under 0.1%, irrelevant for profiling and ordering uses).
/// Falls back to steady_clock if the TSC misbehaves (non-increasing).
struct TscClock {
  bool usable = false;
  std::uint64_t base_tsc = 0;
  TimeNs base_ns = 0;
  std::uint64_t ns_per_tick_q20 = 0;  ///< ns/tick in 44.20 fixed point

  TscClock() {
    const TimeNs t0 = steady_now();
    const std::uint64_t r0 = __rdtsc();
    while (steady_now() - t0 < 2'000'000) {
    }
    const TimeNs t1 = steady_now();
    const std::uint64_t r1 = __rdtsc();
    if (r1 <= r0 || t1 <= t0) return;
    ns_per_tick_q20 = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(t1 - t0) << 20) /
        static_cast<std::uint64_t>(r1 - r0));
    base_tsc = r1;
    base_ns = t1;
    usable = ns_per_tick_q20 != 0;
  }

  [[nodiscard]] TimeNs now() const {
    const std::uint64_t ticks = __rdtsc() - base_tsc;
    return base_ns +
           static_cast<TimeNs>(
               (static_cast<__uint128_t>(ticks) * ns_per_tick_q20) >> 20);
  }
};

const TscClock g_tsc;

#endif  // __x86_64__

std::atomic<TimeNs> g_epoch{steady_now()};

}  // namespace

TimeNs now_ns() {
#if defined(__x86_64__)
  if (g_tsc.usable) return g_tsc.now();
#endif
  return steady_now();
}

void reset_run_epoch() { g_epoch.store(now_ns(), std::memory_order_relaxed); }

TimeNs run_time_ns() {
  return now_ns() - g_epoch.load(std::memory_order_relaxed);
}

TimeNs run_epoch_ns() { return g_epoch.load(std::memory_order_relaxed); }

}  // namespace tdbg::support
