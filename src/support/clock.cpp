#include "support/clock.hpp"

#include <atomic>

namespace tdbg::support {

namespace {

TimeNs steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<TimeNs> g_epoch{steady_now()};

}  // namespace

TimeNs now_ns() { return steady_now(); }

void reset_run_epoch() { g_epoch.store(steady_now(), std::memory_order_relaxed); }

TimeNs run_time_ns() {
  return steady_now() - g_epoch.load(std::memory_order_relaxed);
}

}  // namespace tdbg::support
