#include "support/error.hpp"

#include <sstream>

namespace tdbg::support {

void fail_check(const char* expr, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw UsageError(os.str());
}

}  // namespace tdbg::support
