#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file strings.hpp
/// Small string utilities shared by the text trace format, the graph
/// exporters, and the report printers.

namespace tdbg::support {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Formats a nanosecond duration for humans ("1.234 ms", "12.3 s").
std::string human_duration(std::int64_t ns);

/// Formats a byte count for humans ("1.5 KiB", "3.2 MiB").
std::string human_bytes(std::size_t bytes);

/// Escapes a string for embedding in DOT/VCG labels and SVG text.
std::string escape_label(std::string_view s);

}  // namespace tdbg::support
