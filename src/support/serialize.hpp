#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

/// \file serialize.hpp
/// Little binary (de)serialization layer used by the trace file format.
///
/// Values are encoded little-endian with fixed widths; strings and
/// blobs are length-prefixed with a u32.  The format is deliberately
/// boring: trace files must be readable by offset (the trace graph
/// rescans file regions on zoom, §4.3 of the paper), so there is no
/// compression at this layer.

namespace tdbg::support {

/// Appends binary-encoded values to a growable byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Writes a trivially-copyable scalar little-endian.
  template <typename T>
    requires std::is_trivially_copyable_v<T> && std::is_arithmetic_v<T>
  void put(T value) {
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &value, sizeof(T));
  }

  /// Writes a length-prefixed string (u32 length + bytes).
  void put_string(std::string_view s);

  /// Writes raw bytes with no prefix.
  void put_raw(std::span<const std::byte> bytes);

  /// The accumulated encoding.
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }

  /// Current encoded size in bytes.
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Discards the accumulated encoding.
  void clear() { buf_.clear(); }

 private:
  std::vector<std::byte> buf_;
};

/// Reads binary-encoded values from a byte span.  Throws `FormatError`
/// on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  /// Reads a trivially-copyable scalar.
  template <typename T>
    requires std::is_trivially_copyable_v<T> && std::is_arithmetic_v<T>
  T get() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Reads a length-prefixed string.
  std::string get_string();

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  /// True when every byte has been consumed.
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

  /// Absolute read offset from the start of the span.
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Moves the read offset; must stay within the span.
  void seek(std::size_t pos);

 private:
  void require(std::size_t n) const;

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace tdbg::support
