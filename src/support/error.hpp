#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error reporting for the tdbg libraries.
///
/// The libraries throw `tdbg::Error` (or a subclass) on contract
/// violations and unrecoverable conditions.  Hot paths use the
/// `TDBG_CHECK` macro, which compiles to a branch + cold throw.

namespace tdbg {

/// Base exception for all tdbg errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated an API precondition.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// An I/O operation (trace file read/write) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A trace file or record stream is malformed.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

namespace support {

/// Throws `UsageError` with file/line context.  Out-of-line so the
/// check macro stays small at call sites.
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& msg);

}  // namespace support
}  // namespace tdbg

/// Checks a runtime condition; throws `tdbg::UsageError` on failure.
/// Enabled in all build types: the debugger is itself a correctness
/// tool, so its internal invariants stay armed.
#define TDBG_CHECK(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::tdbg::support::fail_check(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                  \
  } while (0)
